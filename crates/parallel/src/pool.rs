//! Persistent worker pool: the process-wide threads behind [`par_map`]
//! and [`par_sum_u64`].
//!
//! The first fan-out that needs `k` chunks spawns pool workers
//! `0..k-1` lazily (chunk 0 always runs on the calling thread); every
//! later fan-out reuses them, so dispatch costs one mailbox push and a
//! condvar wake — microseconds — instead of OS-thread creation and
//! join. Paying the spawn/join on *every* fan-out, hundreds of times
//! per paper-scale run, is what made `--threads 4` slower than
//! `--threads 1` before this module existed.
//!
//! Chunk `i` of a fan-out always runs on pool worker `i - 1` (each
//! worker has its own mailbox). The static assignment keeps the
//! `leo-trace` `worker-<i>` lanes pinned to real, reused OS threads
//! (lane `worker-0` is the calling thread), and makes reuse assertable:
//! consecutive fan-outs at the same width observe the same
//! [`std::thread::ThreadId`]s.
//!
//! While any chunk runs — on a pool worker or on the caller — the
//! thread-local thread-count override is forced to 1, so a nested
//! fan-out inside a chunk executes serially instead of oversubscribing
//! the host (under the old scoped-thread scheme workers inherited the
//! caller's width, and a fan-out inside a fan-out could stack
//! `workers × workers` fresh threads).
//!
//! A panic inside a chunk is caught on the executing thread, recorded
//! in the job, and resumed on the fan-out's caller only after every
//! chunk has finished. Pool workers therefore never die, and — the
//! safety invariant the lifetime erasure below rests on — the job's
//! borrowed task can never be observed by a worker after
//! [`run_chunks`] returns.
//!
//! [`par_map`]: crate::par_map
//! [`par_sum_u64`]: crate::par_sum_u64

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// `Mutex::lock` that shrugs off poisoning: every critical section in
/// this module is a plain field assignment and cannot panic, and the
/// chunk tasks themselves run outside any lock.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

fn wait_for<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>, dur: Duration) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

/// Per-fan-out watchdog deadline in milliseconds; 0 (the default)
/// disables the watchdog. The CLI wires `DIVIDE_POOL_TIMEOUT_MS` here.
static STALL_TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);

/// Sets the fan-out watchdog deadline (0 disables).
pub fn set_stall_timeout_ms(ms: u64) {
    STALL_TIMEOUT_MS.store(ms, Ordering::Relaxed);
}

/// The configured fan-out watchdog deadline (0 = off).
pub fn stall_timeout_ms() -> u64 {
    STALL_TIMEOUT_MS.load(Ordering::Relaxed)
}

/// What the watchdog observed when a fan-out blew its deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Total time the caller has waited on this fan-out (ms).
    pub waited_ms: u64,
    /// Width of the fan-out.
    pub n_chunks: usize,
    /// Chunk indices that have not finished, in order.
    pub stalled_chunks: Vec<usize>,
}

impl StallReport {
    /// The `leo-trace` lane names of the stalled chunks (chunk `i`
    /// executes on lane `worker-<i>`; `worker-0` is the caller).
    pub fn lanes(&self) -> Vec<String> {
        self.stalled_chunks
            .iter()
            .map(|&c| format!("worker-{c}"))
            .collect()
    }
}

/// What to do about a detected stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallAction {
    /// Terminate the process with this exit code (the default, code 1).
    ///
    /// Exiting — rather than returning an error — is forced by the
    /// pool's lifetime-erasure invariant: `run_chunks` may not return
    /// while a stuck worker could still dereference the borrowed task,
    /// so a stalled fan-out can end only by the worker finishing or
    /// the process dying. The typed log line + exit code 1 is the
    /// "typed error instead of a silent hang".
    Exit(i32),
    /// Re-arm the deadline and keep waiting (test instrumentation).
    KeepWaiting,
}

type StallHandler = fn(&StallReport) -> StallAction;

static STALL_HANDLER: Mutex<Option<StallHandler>> = Mutex::new(None);

/// Overrides what a detected stall does (`None` restores the default
/// log-and-exit-1). Tests install a `KeepWaiting` recorder.
pub fn set_stall_handler(handler: Option<StallHandler>) {
    *lock(&STALL_HANDLER) = handler;
}

/// Sequential dispatch counter behind `pool.chunk` injection call
/// indices. Advanced only on the fan-out caller (fan-outs are serial:
/// nested ones are flattened), so chunk `c` of the `k`-th instrumented
/// fan-out gets the same index at any `--threads` width.
static CHUNK_SEQ: AtomicU64 = AtomicU64::new(0);

/// One fan-out in flight: the lifetime-erased chunk task plus the
/// rendezvous state its caller blocks on.
struct Job {
    /// Points at the closure held on the caller's stack frame. Only
    /// dereferenced by [`Job::run`], which can only execute while
    /// `pending > 0`; [`run_chunks`] does not return until `pending`
    /// reaches zero, so the referent is always alive when read.
    task: *const (dyn Fn(usize) + Sync),
    /// Chunks not yet finished (counts the caller's chunk 0 too).
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic payload caught in any chunk; resumed on the caller.
    panic: Mutex<Option<PanicPayload>>,
    /// Per-chunk completion flags (set even on panic), so the watchdog
    /// can name exactly which chunks are stuck.
    completed: Vec<AtomicBool>,
    /// Base `pool.chunk` injection index for this fan-out (chunk `c`
    /// checks index `base + c`); `None` when no fault plan is active.
    fault_base: Option<u64>,
}

// SAFETY: `task` targets a `Sync` closure, so sharing and calling it
// from several threads is sound; the pointer is only dereferenced
// while the owning `run_chunks` frame keeps the closure alive (see the
// field docs). Workers may hold a dangling `Arc<Job>` briefly after
// the caller returns, but a raw pointer — unlike a reference — is
// allowed to dangle as long as it is not dereferenced.
#[allow(unsafe_code)]
unsafe impl Send for Job {}
#[allow(unsafe_code)]
unsafe impl Sync for Job {}

impl Job {
    /// Executes one chunk with nested fan-outs forced serial, catches
    /// any panic into the job's panic slot, then signals completion.
    fn run(&self, chunk: usize) {
        // SAFETY: `pending` still counts this chunk, so the caller of
        // `run_chunks` is blocked (or about to block) in its
        // rendezvous and the closure is alive.
        #[allow(unsafe_code)]
        let task = unsafe { &*self.task };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            crate::with_threads(1, || {
                if let Some(base) = self.fault_base {
                    if let Some(fault) =
                        leo_fault::should_fire_at("pool.chunk", base + chunk as u64)
                    {
                        // Delay sleeps here (feeding the watchdog);
                        // err/panic unwind into the catch below.
                        fault.apply_chunk();
                    }
                }
                task(chunk)
            })
        }));
        if let Err(payload) = outcome {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.completed[chunk].store(true, Ordering::Release);
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// One worker's inbox of `(job, chunk index)` assignments.
struct Mailbox {
    queue: Mutex<VecDeque<(Arc<Job>, usize)>>,
    ready: Condvar,
}

/// Every pool worker spawned so far, in index order. Workers live for
/// the rest of the process — there is no shutdown path, matching the
/// CLI's run-to-exit lifecycle and keeping the reuse contract trivial.
static POOL: Mutex<Vec<Arc<Mailbox>>> = Mutex::new(Vec::new());

/// Mirror of `POOL.len()` readable without the lock.
static POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

/// Number of persistent pool workers spawned so far (process-wide and
/// monotone; the calling thread of a fan-out is not counted). A
/// `--threads N` run settles at `N - 1`.
pub fn pool_size() -> usize {
    POOL_SIZE.load(Ordering::Relaxed)
}

/// Spawns the pool workers a `threads`-wide fan-out will use, so the
/// first paper-scale fan-out doesn't pay thread creation. The CLI
/// calls this once, right after resolving `--threads`.
pub fn prewarm(threads: usize) {
    ensure_workers(threads.saturating_sub(1));
}

fn worker_loop(mailbox: &Mailbox) {
    loop {
        let (job, chunk) = {
            let mut queue = lock(&mailbox.queue);
            loop {
                if let Some(next) = queue.pop_front() {
                    break next;
                }
                queue = wait(&mailbox.ready, queue);
            }
        };
        job.run(chunk);
    }
}

/// Ensures workers `0..n` exist, spawning only the missing ones.
fn ensure_workers(n: usize) {
    if POOL_SIZE.load(Ordering::Relaxed) >= n {
        return;
    }
    let mut pool = lock(&POOL);
    while pool.len() < n {
        let mailbox = Arc::new(Mailbox {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let theirs = Arc::clone(&mailbox);
        std::thread::Builder::new()
            .name(format!("leo-par-{}", pool.len()))
            .spawn(move || worker_loop(&theirs))
            .expect("spawn pool worker");
        pool.push(mailbox);
        if leo_obs::enabled() {
            leo_obs::metrics::counter_add("parallel.pool_spawned_threads", 1);
        }
    }
    POOL_SIZE.store(pool.len(), Ordering::Relaxed);
    if leo_obs::enabled() {
        leo_obs::metrics::gauge_set("parallel.pool_size", pool.len() as f64);
    }
}

/// Runs `task(i)` for every chunk index `0..n_chunks` — chunk 0 on the
/// calling thread, chunk `i` on pool worker `i - 1` — and returns once
/// all of them have finished. A panic in any chunk (including the
/// caller's own) resumes on the caller after the rendezvous, so no
/// chunk's completion is ever skipped.
pub(crate) fn run_chunks(n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    debug_assert!(n_chunks >= 1);
    ensure_workers(n_chunks.saturating_sub(1));
    // SAFETY (lifetime erasure): the raw pointer is only dereferenced
    // by `Job::run` while `pending > 0`, and this function only
    // returns — normally or by `resume_unwind` — after the rendezvous
    // below observed `pending == 0`. The caller's own chunk runs
    // through `Job::run` too, so even its panic is deferred past the
    // rendezvous. `task` therefore strictly outlives every dereference.
    #[allow(unsafe_code)]
    let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    // Reserve the fan-out's injection indices up front, on the caller:
    // dispatch order is serial and deterministic even though chunk
    // execution is not. One relaxed load when no plan is active.
    let fault_base = if leo_fault::active() {
        Some(CHUNK_SEQ.fetch_add(n_chunks as u64, Ordering::Relaxed))
    } else {
        None
    };
    let job = Arc::new(Job {
        task,
        pending: Mutex::new(n_chunks),
        done: Condvar::new(),
        panic: Mutex::new(None),
        completed: (0..n_chunks).map(|_| AtomicBool::new(false)).collect(),
        fault_base,
    });
    if n_chunks > 1 {
        let pool = lock(&POOL);
        for chunk in 1..n_chunks {
            let mailbox = &pool[chunk - 1];
            lock(&mailbox.queue).push_back((Arc::clone(&job), chunk));
            mailbox.ready.notify_one();
        }
    }
    job.run(0);
    rendezvous(&job, n_chunks);
    let panicked = lock(&job.panic).take();
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }
}

/// Blocks until every chunk of `job` has finished. With a watchdog
/// deadline configured, detects stuck chunks, names them (chunk and
/// lane), and applies the stall handler — by default a typed error
/// line and `exit(1)`, because returning early would dangle the
/// borrowed task (see [`StallAction::Exit`]).
fn rendezvous(job: &Job, n_chunks: usize) {
    let timeout_ms = stall_timeout_ms();
    let mut pending = lock(&job.pending);
    if timeout_ms == 0 {
        while *pending > 0 {
            pending = wait(&job.done, pending);
        }
        return;
    }
    let per_wait = Duration::from_millis(timeout_ms);
    let mut deadline = Instant::now() + per_wait;
    let mut waited_ms = timeout_ms;
    while *pending > 0 {
        let now = Instant::now();
        if now < deadline {
            pending = wait_for(&job.done, pending, deadline - now);
            continue;
        }
        let stalled_chunks: Vec<usize> = (0..n_chunks)
            .filter(|&c| !job.completed[c].load(Ordering::Acquire))
            .collect();
        drop(pending);
        let report = StallReport {
            waited_ms,
            n_chunks,
            stalled_chunks,
        };
        if leo_obs::enabled() {
            leo_obs::metrics::counter_add("parallel.pool_stalls", 1);
        }
        let handler = *lock(&STALL_HANDLER);
        let action = match handler {
            Some(h) => h(&report),
            None => StallAction::Exit(1),
        };
        match action {
            StallAction::Exit(code) => {
                leo_obs::log_error!(
                    "pool watchdog: fan-out of {} chunks stalled after {} ms: chunk(s) {:?} (lane(s) {:?}) never finished; exiting {}",
                    report.n_chunks,
                    report.waited_ms,
                    report.stalled_chunks,
                    report.lanes(),
                    code
                );
                std::process::exit(code);
            }
            StallAction::KeepWaiting => {
                deadline = Instant::now() + per_wait;
                waited_ms += timeout_ms;
                pending = lock(&job.pending);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_chunks_executes_every_chunk_exactly_once() {
        let hits: Vec<AtomicU64> = (0..6).map(|_| AtomicU64::new(0)).collect();
        run_chunks(6, &|w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {w}");
        }
    }

    #[test]
    fn single_chunk_runs_on_the_caller() {
        let caller = std::thread::current().id();
        let seen = Mutex::new(None);
        run_chunks(1, &|_| {
            *lock(&seen) = Some(std::thread::current().id());
        });
        assert_eq!(lock(&seen).take(), Some(caller));
    }

    #[test]
    fn prewarm_spawns_workers_up_front() {
        prewarm(3);
        assert!(pool_size() >= 2, "prewarm(3) keeps >= 2 pool workers");
    }

    /// Reports captured by the `KeepWaiting` test handler (watchdog
    /// state is process-global, so the recorder is too).
    static STALL_REPORTS: Mutex<Vec<StallReport>> = Mutex::new(Vec::new());

    fn record_and_wait(report: &StallReport) -> StallAction {
        lock(&STALL_REPORTS).push(report.clone());
        StallAction::KeepWaiting
    }

    #[test]
    fn watchdog_names_the_stalled_chunk_and_lane() {
        // Width 5 tags this fan-out's reports; other tests in this
        // binary never fan out 5 wide while a watchdog is armed.
        const WIDTH: usize = 5;
        set_stall_handler(Some(record_and_wait));
        set_stall_timeout_ms(40);
        run_chunks(WIDTH, &|c| {
            if c == 3 {
                std::thread::sleep(Duration::from_millis(220));
            }
        });
        set_stall_timeout_ms(0);
        set_stall_handler(None);
        let reports: Vec<StallReport> = lock(&STALL_REPORTS)
            .drain(..)
            .filter(|r| r.n_chunks == WIDTH)
            .collect();
        assert!(
            !reports.is_empty(),
            "a 220 ms chunk under a 40 ms deadline trips the watchdog"
        );
        let last = reports.last().expect("nonempty");
        assert_eq!(last.stalled_chunks, vec![3], "only chunk 3 is stuck");
        assert_eq!(last.lanes(), vec!["worker-3".to_string()]);
        assert!(last.waited_ms >= 40);
    }

    #[test]
    fn injected_chunk_faults_are_keyed_by_dispatch_order() {
        let plan = leo_fault::FaultPlan::parse("seed=11;pool.chunk:p=0.5,mode=delay,delay_ms=0")
            .expect("plan parses");
        // The decision for dispatch index k is pure; collect the
        // expected pattern first.
        let expected: Vec<bool> = (0..8)
            .map(|k| plan.decide("pool.chunk", k).is_some())
            .collect();
        assert!(expected.iter().any(|&f| f), "p=0.5 fires in 8 draws");
        leo_fault::set_plan(Some(plan));
        let before = leo_fault::counter_value("fault.injected.pool.chunk");
        run_chunks(4, &|_| {});
        run_chunks(4, &|_| {});
        let after = leo_fault::counter_value("fault.injected.pool.chunk");
        leo_fault::set_plan(None);
        // Other tests in this binary may fan out concurrently while the
        // plan is briefly active, so dispatch indices are not exclusively
        // ours; assert the site is wired and fires, not an exact count
        // (the index->decision purity is pinned in leo-fault itself).
        assert!(
            after > before,
            "p=0.5 over 8 dispatched chunks injects at least once"
        );
    }
}
