//! Scoped-observability integration tests across the pool boundary
//! (DESIGN.md §15): concurrent per-request captures stay isolated and
//! deterministic, worker attribution is thread-count-invariant, and
//! `DIVIDE_OBS=off` stays zero-cost through the pool.

use leo_obs::scope::{Capture, ObsScope};
use leo_parallel::{mix64, par_map, with_serial_threshold, with_threads};

/// Serializes tests in this binary: they flip the process-wide
/// observability flag and share the worker pool's default scope.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One small observed pipeline: a stage span, a tagged counter, a
/// histogram sample, and a 257-item fan-out through the shared pool.
/// Returns the (deterministic) fold of the mapped values plus the
/// scope's capture.
fn pipeline(tag: &str, threads: usize) -> (u64, Capture) {
    ObsScope::capture(|| {
        let _stage = leo_obs::span!("stage.sim");
        leo_obs::metrics::counter_add(&format!("{tag}.runs"), 1);
        leo_obs::metrics::observe("sim.value", 2.5);
        let items: Vec<u64> = (0..257).collect();
        let out = with_serial_threshold(0, || {
            with_threads(threads, || par_map(&items, |i, &x| mix64(x, i as u64)))
        });
        out.iter().fold(0u64, |acc, &v| acc ^ v)
    })
}

#[test]
fn concurrent_captures_are_isolated_and_match_serial() {
    let _lock = test_lock();
    leo_obs::set_enabled(true);
    // Serial references, one per request tag.
    let (ref_a, cap_a1) = pipeline("t_a", 1);
    let (ref_b, cap_b1) = pipeline("t_b", 1);
    let stable_a = cap_a1.stable_fragment().render();
    let stable_b = cap_b1.stable_fragment().render();
    // Two requests race through the shared pool at 4 threads each.
    let (got_a, got_b) = std::thread::scope(|s| {
        let a = s.spawn(|| pipeline("t_a", 4));
        let b = s.spawn(|| pipeline("t_b", 4));
        (a.join().expect("a"), b.join().expect("b"))
    });
    assert_eq!(got_a.0, ref_a, "parallel result matches serial");
    assert_eq!(got_b.0, ref_b);
    // The stable projection is byte-identical to the serial run's.
    assert_eq!(got_a.1.stable_fragment().render(), stable_a);
    assert_eq!(got_b.1.stable_fragment().render(), stable_b);
    // No bleed: each capture carries its own tag only.
    assert_eq!(got_a.1.metrics.counters.get("t_a.runs"), Some(&1));
    assert_eq!(got_a.1.metrics.counters.get("t_b.runs"), None);
    assert_eq!(got_b.1.metrics.counters.get("t_b.runs"), Some(&1));
    assert_eq!(got_b.1.metrics.counters.get("t_a.runs"), None);
    // Nothing leaked into the process-default scope either.
    assert_eq!(leo_obs::metrics::counter_value("t_a.runs"), 0);
    assert_eq!(leo_obs::metrics::counter_value("t_b.runs"), 0);
}

#[test]
fn stable_capture_is_bit_identical_across_thread_counts() {
    let _lock = test_lock();
    leo_obs::set_enabled(true);
    let (ref_out, ref_cap) = pipeline("t_n", 1);
    let reference = ref_cap.stable_fragment().render();
    assert!(reference.contains("t_n.runs"), "{reference}");
    for threads in [4usize, 8] {
        let (out, cap) = pipeline("t_n", threads);
        assert_eq!(out, ref_out, "threads={threads}");
        assert_eq!(
            cap.stable_fragment().render(),
            reference,
            "stable capture must not depend on thread count (threads={threads})"
        );
    }
}

#[test]
fn fanout_attribution_reconciles_with_pool_counters() {
    let _lock = test_lock();
    leo_obs::set_enabled(true);
    let (_, cap) = pipeline("t_rec", 4);
    let attr = cap
        .parallel
        .get("stage.sim")
        .expect("fan-out attributed to the owning stage");
    assert!(attr.fanouts >= 1);
    assert!(attr.chunks >= 4, "257 items over 4 workers");
    // Chunk spans nest under the dispatching span, one count per chunk.
    let chunk = cap
        .spans
        .get("stage.sim/parallel.par_map")
        .expect("chunk spans recorded under the stage");
    assert_eq!(chunk.count, attr.chunks);
    assert_eq!(chunk.total_ns, attr.busy_ns);
    // Per-stage busy time reconciles exactly with the pool counter:
    // both sides accumulate the same per-chunk busy values.
    let busy_total: u64 = cap.parallel.values().map(|a| a.busy_ns).sum();
    assert_eq!(
        cap.metrics
            .counters
            .get("parallel.worker_busy_ns_total")
            .copied()
            .unwrap_or(0),
        busy_total
    );
    let per_worker: u64 = attr.per_worker_busy_ns.iter().sum();
    assert_eq!(per_worker, attr.busy_ns, "worker shares sum to the total");
}

#[test]
fn disabled_observability_is_inert_through_the_pool() {
    let _lock = test_lock();
    leo_obs::set_enabled(true);
    let (reference, _) = pipeline("t_off", 4);
    leo_obs::set_enabled(false);
    let (out, cap) = pipeline("t_off", 4);
    leo_obs::set_enabled(true);
    assert_eq!(out, reference, "results identical with observability off");
    assert!(cap.spans.is_empty(), "{:?}", cap.spans.keys());
    assert!(cap.metrics.counters.is_empty());
    assert!(cap.metrics.histograms.is_empty());
    assert!(cap.parallel.is_empty());
}
