//! Chart types for the paper's figures.
//!
//! [`LineChart`] renders Figs 1 (CDF), 3 (step curves), and 4 (CDFs);
//! [`Heatmap`] renders Fig 2; [`PointMap`] renders Fig 1's national
//! map. Everything produces standalone SVG via [`crate::svg`].

use crate::error::ReportError;
use crate::svg::{ramp_color, ramp_color_into, SvgDoc, PALETTE};

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 52.0;

/// "Nice" tick positions covering `[lo, hi]` with about `n` ticks.
fn ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    // `partial_cmp` keeps the NaN-tolerant behaviour of `!(hi > lo)`.
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) || n == 0 {
        return vec![lo];
    }
    let raw = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = first;
    while t <= hi + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v.abs() >= 1e4 {
        format!("{:.0}k", v / 1e3)
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
    /// Render as a step function (horizontal-then-vertical).
    pub step: bool,
}

impl Series {
    /// A plain line series.
    pub fn line(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            step: false,
        }
    }

    /// A step series.
    pub fn steps(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            step: true,
        }
    }
}

/// A multi-series XY chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Series to draw.
    pub series: Vec<Series>,
    /// Reverse the x axis (Fig 3 counts unserved locations downward).
    pub reverse_x: bool,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            reverse_x: false,
        }
    }

    /// Adds a series.
    pub fn push(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut xmin = f64::INFINITY;
        let mut xmax = f64::NEG_INFINITY;
        let mut ymin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                xmin = xmin.min(x);
                xmax = xmax.max(x);
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
        if !xmin.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        if xmin == xmax {
            xmax = xmin + 1.0;
        }
        if ymin == ymax {
            ymax = ymin + 1.0;
        }
        // Pad y range 5%.
        let pad = (ymax - ymin) * 0.05;
        (xmin, xmax, (ymin - pad).min(ymin), ymax + pad)
    }

    /// Renders to SVG text.
    pub fn render(&self, width: f64, height: f64) -> String {
        let mut doc = SvgDoc::new(width, height);
        let (xmin, xmax, ymin, ymax) = self.bounds();
        let pw = width - MARGIN_L - MARGIN_R;
        let ph = height - MARGIN_T - MARGIN_B;
        let sx = |x: f64| {
            let t = (x - xmin) / (xmax - xmin);
            let t = if self.reverse_x { 1.0 - t } else { t };
            MARGIN_L + t * pw
        };
        let sy = |y: f64| MARGIN_T + (1.0 - (y - ymin) / (ymax - ymin)) * ph;

        // Frame and grid.
        doc.rect(MARGIN_L, MARGIN_T, pw, ph, "#fbfbfb", Some("#444444"));
        for t in ticks(xmin, xmax, 6) {
            let x = sx(t);
            doc.line(x, MARGIN_T, x, MARGIN_T + ph, "#dddddd", 0.5);
            doc.line(x, MARGIN_T + ph, x, MARGIN_T + ph + 4.0, "#444444", 1.0);
            doc.text(x, MARGIN_T + ph + 16.0, &fmt_tick(t), 11.0, "middle");
        }
        for t in ticks(ymin, ymax, 6) {
            let y = sy(t);
            doc.line(MARGIN_L, y, MARGIN_L + pw, y, "#dddddd", 0.5);
            doc.line(MARGIN_L - 4.0, y, MARGIN_L, y, "#444444", 1.0);
            doc.text(MARGIN_L - 7.0, y + 4.0, &fmt_tick(t), 11.0, "end");
        }
        doc.text(width / 2.0, 18.0, &self.title, 14.0, "middle");
        doc.text(
            MARGIN_L + pw / 2.0,
            height - 14.0,
            &self.x_label,
            12.0,
            "middle",
        );
        doc.vtext(18.0, MARGIN_T + ph / 2.0, &self.y_label, 12.0);

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let mut pts: Vec<(f64, f64)> = Vec::new();
            let mut sorted = s.points.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for (k, &(x, y)) in sorted.iter().enumerate() {
                if s.step && k > 0 {
                    // Horizontal segment at the previous level first.
                    let prev_y = sorted[k - 1].1;
                    pts.push((sx(x), sy(prev_y)));
                }
                pts.push((sx(x), sy(y)));
            }
            doc.polyline(&pts, color, 1.8);
            // Legend swatch.
            let ly = MARGIN_T + 14.0 + 16.0 * i as f64;
            doc.line(
                MARGIN_L + pw - 120.0,
                ly,
                MARGIN_L + pw - 100.0,
                ly,
                color,
                2.5,
            );
            doc.text(MARGIN_L + pw - 95.0, ly + 4.0, &s.label, 11.0, "start");
        }
        doc.finish()
    }
}

/// A grid heatmap over integer axes (Fig 2).
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X axis values (columns).
    pub xs: Vec<u32>,
    /// Y axis values (rows).
    pub ys: Vec<u32>,
    /// `values[yi][xi]` in `[vmin, vmax]`.
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Renders to SVG text with a color ramp legend. Panics on
    /// malformed data; use [`Heatmap::try_render`] to get an error
    /// instead.
    pub fn render(&self, width: f64, height: f64) -> String {
        self.try_render(width, height)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders to SVG text, rejecting empty or mis-shaped grids with a
    /// [`ReportError`] instead of panicking or emitting NaN geometry.
    pub fn try_render(&self, width: f64, height: f64) -> Result<String, ReportError> {
        if self.ys.is_empty() || self.values.is_empty() {
            return Err(ReportError::EmptyData {
                what: "heatmap rows",
            });
        }
        if self.xs.is_empty() {
            return Err(ReportError::EmptyData {
                what: "heatmap columns",
            });
        }
        if self.values.len() != self.ys.len() {
            return Err(ReportError::ShapeMismatch {
                what: "row count mismatch",
                expected: self.ys.len(),
                got: self.values.len(),
            });
        }
        for row in &self.values {
            if row.len() != self.xs.len() {
                return Err(ReportError::ShapeMismatch {
                    what: "column count mismatch",
                    expected: self.xs.len(),
                    got: row.len(),
                });
            }
        }
        let mut doc = SvgDoc::new(width, height);
        let legend_w = 56.0;
        let pw = width - MARGIN_L - MARGIN_R - legend_w;
        let ph = height - MARGIN_T - MARGIN_B;
        let vmin = self
            .values
            .iter()
            .flatten()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let vmax = self
            .values
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (vmax - vmin).max(1e-12);
        let cw = pw / self.xs.len() as f64;
        let ch = ph / self.ys.len() as f64;
        for (yi, row) in self.values.iter().enumerate() {
            for (xi, &v) in row.iter().enumerate() {
                let t = (v - vmin) / span;
                // Row 0 at the bottom (y axis increases upward).
                let y = MARGIN_T + ph - (yi as f64 + 1.0) * ch;
                doc.rect(
                    MARGIN_L + xi as f64 * cw,
                    y,
                    cw + 0.5,
                    ch + 0.5,
                    &ramp_color(t),
                    None,
                );
            }
        }
        // Axis labels at a readable density.
        let xstep = (self.xs.len() / 10).max(1);
        for (xi, &x) in self.xs.iter().enumerate().step_by(xstep) {
            doc.text(
                MARGIN_L + (xi as f64 + 0.5) * cw,
                MARGIN_T + ph + 16.0,
                &x.to_string(),
                11.0,
                "middle",
            );
        }
        let ystep = (self.ys.len() / 10).max(1);
        for (yi, &y) in self.ys.iter().enumerate().step_by(ystep) {
            doc.text(
                MARGIN_L - 7.0,
                MARGIN_T + ph - (yi as f64 + 0.5) * ch + 4.0,
                &y.to_string(),
                11.0,
                "end",
            );
        }
        doc.text(width / 2.0, 18.0, &self.title, 14.0, "middle");
        doc.text(
            MARGIN_L + pw / 2.0,
            height - 14.0,
            &self.x_label,
            12.0,
            "middle",
        );
        doc.vtext(18.0, MARGIN_T + ph / 2.0, &self.y_label, 12.0);
        // Color legend.
        let lx = MARGIN_L + pw + 16.0;
        let bands = 48;
        for k in 0..bands {
            let t = k as f64 / (bands - 1) as f64;
            let y = MARGIN_T + ph * (1.0 - t);
            doc.rect(
                lx,
                y - ph / bands as f64,
                16.0,
                ph / bands as f64 + 0.5,
                &ramp_color(t),
                None,
            );
        }
        doc.text(
            lx + 20.0,
            MARGIN_T + 10.0,
            &format!("{vmax:.2}"),
            10.0,
            "start",
        );
        doc.text(
            lx + 20.0,
            MARGIN_T + ph,
            &format!("{vmin:.2}"),
            10.0,
            "start",
        );
        Ok(doc.finish())
    }
}

/// A geographic point map (Fig 1): points sized/colored by weight over
/// a lat/lng extent.
#[derive(Debug, Clone)]
pub struct PointMap {
    /// Chart title.
    pub title: String,
    /// `(lat, lng, weight)` points.
    pub points: Vec<(f64, f64, u64)>,
}

impl PointMap {
    /// Renders an equirectangular scatter of the points, color ramped
    /// by `log(weight)`.
    pub fn render(&self, width: f64, height: f64) -> String {
        let mut doc = SvgDoc::new(width, height);
        doc.text(width / 2.0, 18.0, &self.title, 14.0, "middle");
        if self.points.is_empty() {
            return doc.finish();
        }
        let (mut lat0, mut lat1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lng0, mut lng1) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut wmax = 1u64;
        for &(lat, lng, w) in &self.points {
            lat0 = lat0.min(lat);
            lat1 = lat1.max(lat);
            lng0 = lng0.min(lng);
            lng1 = lng1.max(lng);
            wmax = wmax.max(w);
        }
        let pw = width - 40.0;
        let ph = height - 60.0;
        let sx = |lng: f64| 20.0 + (lng - lng0) / (lng1 - lng0).max(1e-9) * pw;
        let sy = |lat: f64| 30.0 + (1.0 - (lat - lat0) / (lat1 - lat0).max(1e-9)) * ph;
        let lmax = (wmax as f64).ln().max(1e-9);
        // One reused color buffer for the ~20k-point paper-scale map,
        // and one up-front body reservation (a circle element runs
        // ~58 bytes; 64 leaves headroom so the body never reallocates).
        doc.reserve(self.points.len() * 64);
        let mut color = String::with_capacity(7);
        for &(lat, lng, w) in &self.points {
            let t = (w.max(1) as f64).ln() / lmax;
            color.clear();
            ramp_color_into(t, &mut color);
            doc.circle(sx(lng), sy(lat), 1.1 + 2.2 * t, &color);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_nice_and_cover_range() {
        let t = ticks(0.0, 100.0, 5);
        assert!(t.contains(&0.0) && t.contains(&100.0), "{t:?}");
        for w in t.windows(2) {
            assert!((w[1] - w[0] - 20.0).abs() < 1e-9);
        }
        let t2 = ticks(0.37, 0.94, 5);
        assert!(t2.len() >= 3);
        assert!(t2.iter().all(|&v| (0.37..=0.94001).contains(&v)));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(5.0), "5");
        assert_eq!(fmt_tick(50_000.0), "50k");
        assert_eq!(fmt_tick(3_500_000.0), "3.5M");
        assert_eq!(fmt_tick(0.75), "0.75");
    }

    #[test]
    fn line_chart_renders_all_series() {
        let mut c = LineChart::new("T", "x", "y");
        c.push(Series::line("a", vec![(0.0, 0.0), (1.0, 1.0)]));
        c.push(Series::steps("b", vec![(0.0, 2.0), (1.0, 1.0)]));
        let svg = c.render(640.0, 400.0);
        assert!(svg.contains("<svg"));
        assert_eq!(svg.matches("polyline").count(), 2);
        assert!(svg.contains(">a<") && svg.contains(">b<"));
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let c = LineChart::new("empty", "x", "y");
        let svg = c.render(300.0, 200.0);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn heatmap_renders_cells() {
        let h = Heatmap {
            title: "H".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            xs: vec![1, 2, 3],
            ys: vec![1, 2],
            values: vec![vec![0.0, 0.5, 1.0], vec![1.0, 0.5, 0.0]],
        };
        let svg = h.render(500.0, 300.0);
        // 6 data cells + background + legend bands.
        assert!(svg.matches("<rect").count() >= 7);
        assert!(svg.contains("1.00") && svg.contains("0.00"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn heatmap_validates_shape() {
        let h = Heatmap {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            xs: vec![1, 2],
            ys: vec![1],
            values: vec![vec![0.0]],
        };
        let _ = h.render(100.0, 100.0);
    }

    #[test]
    fn heatmap_zero_rows_errors_gracefully() {
        let h = Heatmap {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            xs: vec![1, 2],
            ys: vec![],
            values: vec![],
        };
        let err = h.try_render(100.0, 100.0).unwrap_err();
        assert_eq!(
            err,
            ReportError::EmptyData {
                what: "heatmap rows"
            }
        );
    }

    #[test]
    fn heatmap_try_render_matches_render() {
        let h = Heatmap {
            title: "H".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            xs: vec![1, 2],
            ys: vec![1],
            values: vec![vec![0.25, 0.75]],
        };
        assert_eq!(h.try_render(300.0, 200.0).unwrap(), h.render(300.0, 200.0));
    }

    #[test]
    fn point_map_scales_points() {
        let m = PointMap {
            title: "map".into(),
            points: vec![(30.0, -100.0, 1), (45.0, -80.0, 1000)],
        };
        let svg = m.render(600.0, 400.0);
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn reversed_x_flips_coordinates() {
        let mut a = LineChart::new("", "", "");
        a.push(Series::line("s", vec![(0.0, 0.0), (10.0, 1.0)]));
        let normal = a.render(400.0, 300.0);
        a.reverse_x = true;
        let reversed = a.render(400.0, 300.0);
        assert_ne!(normal, reversed);
    }
}

/// A vertical-bar histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Bin edges (length = bars + 1), ascending.
    pub edges: Vec<f64>,
    /// Bar heights (length = edges.len() − 1).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Bins `values` into `bins` equal-width bins over their range.
    pub fn from_values(
        title: impl Into<String>,
        x_label: impl Into<String>,
        values: &[f64],
        bins: usize,
    ) -> Self {
        assert!(bins > 0, "need at least one bin");
        let (lo, hi) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let (lo, hi) = if lo.is_finite() && hi > lo {
            (lo, hi)
        } else {
            (0.0, 1.0)
        };
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0u64; bins];
        for &v in values {
            let k = (((v - lo) / width) as usize).min(bins - 1);
            counts[k] += 1;
        }
        Histogram {
            title: title.into(),
            x_label: x_label.into(),
            y_label: "count".into(),
            edges: (0..=bins).map(|k| lo + width * k as f64).collect(),
            counts,
        }
    }

    /// Renders to SVG. Panics on malformed data (empty or mismatched
    /// edges — [`Histogram::from_values`] never produces either); use
    /// [`Histogram::try_render`] for directly-constructed histograms
    /// whose shape is not known good.
    pub fn render(&self, width: f64, height: f64) -> String {
        self.try_render(width, height)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Renders to SVG, rejecting empty edges (which used to crash with
    /// an opaque `unwrap` on `edges.last()`) and edge/count mismatches
    /// with a [`ReportError`].
    pub fn try_render(&self, width: f64, height: f64) -> Result<String, ReportError> {
        if self.edges.is_empty() {
            return Err(ReportError::EmptyData {
                what: "histogram edges",
            });
        }
        if self.edges.len() != self.counts.len() + 1 {
            return Err(ReportError::ShapeMismatch {
                what: "edge/count mismatch",
                expected: self.counts.len() + 1,
                got: self.edges.len(),
            });
        }
        let mut doc = SvgDoc::new(width, height);
        let pw = width - MARGIN_L - MARGIN_R;
        let ph = height - MARGIN_T - MARGIN_B;
        let max = *self.counts.iter().max().unwrap_or(&1) as f64;
        let lo = self.edges[0];
        let hi = *self.edges.last().expect("edges checked non-empty above");
        let sx = |x: f64| MARGIN_L + (x - lo) / (hi - lo).max(1e-12) * pw;
        doc.rect(MARGIN_L, MARGIN_T, pw, ph, "#fbfbfb", Some("#444444"));
        for (k, &c) in self.counts.iter().enumerate() {
            let x0 = sx(self.edges[k]);
            let x1 = sx(self.edges[k + 1]);
            let h = ph * c as f64 / max.max(1.0);
            doc.rect(
                x0 + 0.5,
                MARGIN_T + ph - h,
                (x1 - x0 - 1.0).max(0.5),
                h,
                PALETTE[0],
                None,
            );
        }
        for t in ticks(lo, hi, 6) {
            doc.text(sx(t), MARGIN_T + ph + 16.0, &fmt_tick(t), 11.0, "middle");
        }
        for t in ticks(0.0, max, 5) {
            let y = MARGIN_T + ph * (1.0 - t / max.max(1.0));
            doc.text(MARGIN_L - 7.0, y + 4.0, &fmt_tick(t), 11.0, "end");
        }
        doc.text(width / 2.0, 18.0, &self.title, 14.0, "middle");
        doc.text(
            MARGIN_L + pw / 2.0,
            height - 14.0,
            &self.x_label,
            12.0,
            "middle",
        );
        doc.vtext(18.0, MARGIN_T + ph / 2.0, &self.y_label, 12.0);
        Ok(doc.finish())
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn bins_cover_all_values() {
        let values: Vec<f64> = (0..100).map(|k| k as f64).collect();
        let h = Histogram::from_values("h", "x", &values, 10);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(h.counts.len(), 10);
        for c in &h.counts {
            assert_eq!(*c, 10);
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let h = Histogram::from_values("h", "x", &[], 5);
        assert_eq!(h.counts.iter().sum::<u64>(), 0);
        let h2 = Histogram::from_values("h", "x", &[3.0, 3.0, 3.0], 4);
        assert_eq!(h2.counts.iter().sum::<u64>(), 3);
        assert!(h2.render(300.0, 200.0).contains("</svg>"));
    }

    #[test]
    fn renders_bars() {
        let h = Histogram::from_values("h", "x", &[1.0, 2.0, 2.5, 9.0], 4);
        let svg = h.render(400.0, 300.0);
        // Background + frame + ≥3 nonzero bars.
        assert!(svg.matches("<rect").count() >= 5);
    }

    #[test]
    fn empty_edges_error_instead_of_index_panic() {
        // Regression: a directly-constructed histogram with no edges
        // used to die on `edges.last().unwrap()`.
        let h = Histogram {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            edges: vec![],
            counts: vec![],
        };
        let err = h.try_render(300.0, 200.0).unwrap_err();
        assert_eq!(
            err,
            ReportError::EmptyData {
                what: "histogram edges"
            }
        );
    }

    #[test]
    fn edge_count_mismatch_is_reported() {
        let h = Histogram {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            edges: vec![0.0, 1.0],
            counts: vec![3, 4],
        };
        let err = h.try_render(300.0, 200.0).unwrap_err();
        assert!(err.to_string().contains("edge/count mismatch"), "{err}");
    }
}
