//! Minimal RFC-4180 CSV writing.

use std::fmt::Write as _;

/// Builds CSV text in memory; callers persist it with `std::fs`.
///
/// Every record path streams straight into the output buffer — the
/// only steady-state allocation is the buffer's own growth, so
/// artifact stages can emit tens of thousands of records without
/// churning the allocator.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buf: String,
    width: Option<usize>,
    /// Reused per-field formatting scratch (`record_display` and
    /// [`CsvRow::field`] render values here before escaping).
    scratch: String,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one RFC-4180-escaped field to the buffer.
    fn push_escaped(&mut self, field: &str) {
        if field.contains(',') || field.contains('"') || field.contains('\n') {
            self.buf.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    self.buf.push('"');
                }
                self.buf.push(ch);
            }
            self.buf.push('"');
        } else {
            self.buf.push_str(field);
        }
    }

    fn end_record(&mut self, fields: usize) {
        match self.width {
            None => self.width = Some(fields),
            Some(w) => assert_eq!(w, fields, "inconsistent CSV record width"),
        }
        self.buf.push('\n');
    }

    /// Writes one record; all records must have the same field count.
    pub fn record<S: AsRef<str>>(&mut self, fields: &[S]) -> &mut Self {
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.push_escaped(f.as_ref());
        }
        self.end_record(fields.len());
        self
    }

    /// Writes a record of displayable values.
    pub fn record_display<T: std::fmt::Display>(&mut self, fields: &[T]) -> &mut Self {
        let mut row = CsvRow { w: self, n: 0 };
        for f in fields {
            row.field(f);
        }
        let n = row.n;
        self.end_record(n);
        self
    }

    /// Streams one record field by field; `row.field` takes anything
    /// `Display`, including a zero-allocation `format_args!`.
    pub fn record_with(&mut self, build: impl FnOnce(&mut CsvRow)) -> &mut Self {
        let mut row = CsvRow { w: self, n: 0 };
        build(&mut row);
        let n = row.n;
        self.end_record(n);
        self
    }

    /// The CSV text so far.
    pub fn finish(&self) -> &str {
        &self.buf
    }

    /// Writes the CSV text to `path`, surfacing the I/O error (missing
    /// or unwritable directory, ...) instead of panicking.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

/// One in-flight record of a [`CsvWriter::record_with`] call.
pub struct CsvRow<'a> {
    w: &'a mut CsvWriter,
    n: usize,
}

impl CsvRow<'_> {
    /// Appends one field, rendered through the writer's reused scratch.
    pub fn field(&mut self, value: impl std::fmt::Display) -> &mut Self {
        if self.n > 0 {
            self.w.buf.push(',');
        }
        self.n += 1;
        let mut scratch = std::mem::take(&mut self.w.scratch);
        scratch.clear();
        let _ = write!(scratch, "{value}");
        self.w.push_escaped(&scratch);
        self.w.scratch = scratch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_records() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]).record(&["1", "2"]);
        assert_eq!(w.finish(), "a,b\n1,2\n");
    }

    #[test]
    fn escapes_commas_quotes_newlines() {
        let mut w = CsvWriter::new();
        w.record(&["x,y", "he said \"hi\"", "line\nbreak"]);
        assert_eq!(
            w.finish(),
            "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent CSV record width")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]).record(&["only"]);
    }

    #[test]
    fn display_records() {
        let mut w = CsvWriter::new();
        w.record_display(&[1.5, 2.0]);
        assert_eq!(w.finish(), "1.5,2\n");
    }

    #[test]
    fn streamed_records_match_slice_records() {
        let mut w = CsvWriter::new();
        w.record_with(|r| {
            r.field("plan, basic")
                .field(format_args!("{:.2}", 9.5))
                .field(42u64);
        });
        assert_eq!(w.finish(), "\"plan, basic\",9.50,42\n");
    }

    #[test]
    #[should_panic(expected = "inconsistent CSV record width")]
    fn streamed_width_mismatch_panics() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]);
        w.record_with(|r| {
            r.field("only");
        });
    }

    #[test]
    fn write_to_surfaces_io_errors() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]);
        // A path whose parent is a regular file can never be written.
        let dir = std::env::temp_dir().join("leo_report_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let blocker = dir.join("not_a_dir");
        std::fs::write(&blocker, "file").expect("blocker");
        let err = w.write_to(&blocker.join("out.csv")).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::NotADirectory | std::io::ErrorKind::NotFound
            ),
            "{err:?}"
        );
        // And a writable path round-trips.
        let ok = dir.join("out.csv");
        w.write_to(&ok).expect("write");
        assert_eq!(std::fs::read_to_string(&ok).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
