//! Minimal RFC-4180 CSV writing.

use std::fmt::Write as _;

/// Builds CSV text in memory; callers persist it with `std::fs`.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buf: String,
    width: Option<usize>,
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one record; all records must have the same field count.
    pub fn record<S: AsRef<str>>(&mut self, fields: &[S]) -> &mut Self {
        match self.width {
            None => self.width = Some(fields.len()),
            Some(w) => assert_eq!(w, fields.len(), "inconsistent CSV record width"),
        }
        let line: Vec<String> = fields.iter().map(|f| escape(f.as_ref())).collect();
        let _ = writeln!(self.buf, "{}", line.join(","));
        self
    }

    /// Writes a record of displayable values.
    pub fn record_display<T: std::fmt::Display>(&mut self, fields: &[T]) -> &mut Self {
        let strings: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        self.record(&strings)
    }

    /// The CSV text so far.
    pub fn finish(&self) -> &str {
        &self.buf
    }

    /// Writes the CSV text to `path`, surfacing the I/O error (missing
    /// or unwritable directory, ...) instead of panicking.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_records() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]).record(&["1", "2"]);
        assert_eq!(w.finish(), "a,b\n1,2\n");
    }

    #[test]
    fn escapes_commas_quotes_newlines() {
        let mut w = CsvWriter::new();
        w.record(&["x,y", "he said \"hi\"", "line\nbreak"]);
        assert_eq!(
            w.finish(),
            "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent CSV record width")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]).record(&["only"]);
    }

    #[test]
    fn display_records() {
        let mut w = CsvWriter::new();
        w.record_display(&[1.5, 2.0]);
        assert_eq!(w.finish(), "1.5,2\n");
    }

    #[test]
    fn write_to_surfaces_io_errors() {
        let mut w = CsvWriter::new();
        w.record(&["a", "b"]);
        // A path whose parent is a regular file can never be written.
        let dir = std::env::temp_dir().join("leo_report_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let blocker = dir.join("not_a_dir");
        std::fs::write(&blocker, "file").expect("blocker");
        let err = w.write_to(&blocker.join("out.csv")).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::NotADirectory | std::io::ErrorKind::NotFound
            ),
            "{err:?}"
        );
        // And a writable path round-trips.
        let ok = dir.join("out.csv");
        w.write_to(&ok).expect("write");
        assert_eq!(std::fs::read_to_string(&ok).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
