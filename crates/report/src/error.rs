//! Error type for renderers that can reject their input.
//!
//! The paper pipeline always hands renderers well-formed data, so the
//! `render()` methods keep their infallible signatures; the
//! `try_render()` variants return [`ReportError`] instead of panicking,
//! for callers (imports, scenario transforms) that cannot prove their
//! data non-empty up front.

/// Why a renderer rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The renderer was handed no data at all (zero rows, no bin
    /// edges, ...); `what` names the missing piece.
    EmptyData {
        /// What was empty, e.g. `"histogram edges"`.
        what: &'static str,
    },
    /// Two dimensions that must agree did not.
    ShapeMismatch {
        /// Which invariant broke, e.g. `"column count mismatch"`.
        what: &'static str,
        /// The length the renderer expected.
        expected: usize,
        /// The length it got.
        got: usize,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::EmptyData { what } => write!(f, "nothing to render: {what} empty"),
            ReportError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected}, got {got}"),
        }
    }
}

impl std::error::Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = ReportError::EmptyData { what: "rows" };
        assert_eq!(e.to_string(), "nothing to render: rows empty");
        let m = ReportError::ShapeMismatch {
            what: "column count mismatch",
            expected: 3,
            got: 1,
        };
        assert_eq!(m.to_string(), "column count mismatch: expected 3, got 1");
    }
}
