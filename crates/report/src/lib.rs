//! # leo-report
//!
//! Rendering for the reproduction's artifacts: aligned text tables for
//! terminal output, CSV for downstream analysis, and self-contained SVG
//! charts (line/step plots, CDFs, heatmaps, point maps) — all
//! hand-rolled so the workspace carries no plotting dependencies.
//!
//! Every table and figure of the paper is regenerated through this
//! crate by `divide-cli` and the Criterion benches; the SVGs land in
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod error;
pub mod markdown;
pub mod spark;
pub mod svg;
pub mod table;

pub use chart::{Heatmap, Histogram, LineChart, PointMap, Series};
pub use csv::{CsvRow, CsvWriter};
pub use error::ReportError;
pub use markdown::{Align, MarkdownTable};
pub use spark::sparkline;
pub use table::TextTable;
