//! GitHub-flavored markdown tables.
//!
//! EXPERIMENTS.md-style artifacts want tables that render on a code
//! host; this mirrors [`crate::table::TextTable`]'s API with markdown
//! output and per-column alignment.

/// Column alignment in the rendered markdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (`:---`).
    Left,
    /// Right-aligned (`---:`).
    Right,
    /// Centered (`:---:`).
    Center,
}

/// A markdown table builder.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    align: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with headers, all columns left-aligned.
    pub fn new(header: &[&str]) -> Self {
        MarkdownTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            align: vec![Align::Left; header.len()],
            rows: Vec::new(),
        }
    }

    /// Sets one column's alignment.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        self.align[column] = align;
        self
    }

    /// Appends a row; the cell count must match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table. Pipe characters in cells are escaped.
    pub fn render(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        for a in &self.align {
            out.push_str(match a {
                Align::Left => ":---|",
                Align::Right => "---:|",
                Align::Center => ":---:|",
            });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_table() {
        let mut t = MarkdownTable::new(&["name", "n"]);
        t.align(1, Align::Right);
        t.row(&["alpha".into(), "1".into()]);
        let s = t.render();
        assert_eq!(s, "| name | n |\n|:---|---:|\n| alpha | 1 |\n");
    }

    #[test]
    fn escapes_pipes() {
        let mut t = MarkdownTable::new(&["expr"]);
        t.row(&["a|b".into()]);
        assert!(t.render().contains("a\\|b"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.row(&["only".into()]);
    }

    #[test]
    fn center_alignment_marker() {
        let mut t = MarkdownTable::new(&["x"]);
        t.align(0, Align::Center);
        assert!(t.render().contains("|:---:|"));
    }
}
