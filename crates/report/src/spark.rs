//! ASCII sparklines: a run of values compressed into one cell-wide
//! string of block glyphs (`▁▂▃▄▅▆▇█`), for trend columns in terminal
//! tables (`divide history`).

/// The glyph ramp, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a sparkline, one glyph per value, scaled to the
/// finite min–max range of the input. Non-finite values render as a
/// space; an all-equal (or single-value) series renders at mid-height
/// so it reads as "flat", not "minimal". Empty input yields an empty
/// string.
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return values.iter().map(|_| ' ').collect();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if range <= 0.0 {
                BLOCKS[BLOCKS.len() / 2]
            } else {
                let t = (v - min) / range;
                let idx = ((t * (BLOCKS.len() - 1) as f64).round() as usize).min(BLOCKS.len() - 1);
                BLOCKS[idx]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn monotone_ramp_uses_full_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn flat_series_sits_at_mid_height() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▅▅▅");
        assert_eq!(sparkline(&[0.0]), "▅");
    }

    #[test]
    fn extremes_map_to_first_and_last_block() {
        let s: Vec<char> = sparkline(&[10.0, 20.0, 10.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
        assert_eq!(s[2], '▁');
    }

    #[test]
    fn non_finite_values_render_as_spaces() {
        let s = sparkline(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[1], ' ');
        assert_eq!(chars[3], ' ');
        assert_eq!(sparkline(&[f64::NAN, f64::NAN]), "  ");
    }
}
