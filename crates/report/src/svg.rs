//! A tiny SVG document builder.
//!
//! Just enough of SVG to draw the paper's figures: rectangles, lines,
//! polylines, circles, and text, with a fixed coordinate system. All
//! attribute values are numeric or from internal palettes, so no
//! escaping machinery is needed beyond text content.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text content.
fn esc(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

impl SvgDoc {
    /// Creates a document of the given pixel size with a white
    /// background.
    pub fn new(width: f64, height: f64) -> Self {
        let mut doc = SvgDoc {
            width,
            height,
            body: String::new(),
        };
        doc.rect(0.0, 0.0, width, height, "#ffffff", None);
        doc
    }

    /// Document width, px.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height, px.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Pre-reserves body capacity; element-heavy renders (the ~20k-dot
    /// point map) call this once instead of doubling a megabyte string.
    pub fn reserve(&mut self, bytes: usize) {
        self.body.reserve(bytes);
    }

    /// A filled (and optionally stroked) rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let s = stroke
            .map(|s| format!(" stroke=\"{s}\" stroke-width=\"1\""))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\"{s}/>"
        );
    }

    /// A line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width}\"/>"
        );
    }

    /// An unfilled polyline through the given points, streamed into the
    /// body without a per-point string.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        self.body.push_str("<polyline points=\"");
        for (i, (x, y)) in points.iter().enumerate() {
            if i > 0 {
                self.body.push(' ');
            }
            let _ = write!(self.body, "{x:.2},{y:.2}");
        }
        let _ = writeln!(
            self.body,
            "\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width}\"/>"
        );
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            "<circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r:.2}\" fill=\"{fill}\"/>"
        );
    }

    /// Text with an anchor of `start`, `middle`, or `end`.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str) {
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size}\" font-family=\"sans-serif\" text-anchor=\"{anchor}\">{}</text>",
            esc(content)
        );
    }

    /// Vertical text (rotated −90°), for y-axis labels.
    pub fn vtext(&mut self, x: f64, y: f64, content: &str, size: f64) {
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size}\" font-family=\"sans-serif\" text-anchor=\"middle\" transform=\"rotate(-90 {x:.2} {y:.2})\">{}</text>",
            esc(content)
        );
    }

    /// Serializes the document.
    pub fn finish(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// The default series palette (color-blind-safe Okabe–Ito subset).
pub const PALETTE: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

/// Maps `t ∈ [0,1]` to a perceptually reasonable blue→yellow ramp for
/// heatmaps (a compact viridis-like approximation).
pub fn ramp_color(t: f64) -> String {
    let mut out = String::with_capacity(7);
    ramp_color_into(t, &mut out);
    out
}

/// [`ramp_color`] into a caller-owned buffer, for per-point loops that
/// would otherwise allocate one string per ramp lookup.
pub fn ramp_color_into(t: f64, out: &mut String) {
    let t = t.clamp(0.0, 1.0);
    // Piecewise-linear through viridis anchor colors.
    const ANCHORS: [(f64, (u8, u8, u8)); 5] = [
        (0.00, (68, 1, 84)),
        (0.25, (59, 82, 139)),
        (0.50, (33, 145, 140)),
        (0.75, (94, 201, 98)),
        (1.00, (253, 231, 37)),
    ];
    let mut lo = ANCHORS[0];
    let mut hi = ANCHORS[4];
    for w in ANCHORS.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let f = if hi.0 > lo.0 {
        (t - lo.0) / (hi.0 - lo.0)
    } else {
        0.0
    };
    let mix = |a: u8, b: u8| -> u8 { (a as f64 + f * (b as f64 - a as f64)).round() as u8 };
    let _ = write!(
        out,
        "#{:02x}{:02x}{:02x}",
        mix(lo.1 .0, hi.1 .0),
        mix(lo.1 .1, hi.1 .1),
        mix(lo.1 .2, hi.1 .2)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut d = SvgDoc::new(100.0, 50.0);
        d.line(0.0, 0.0, 10.0, 10.0, "#000000", 1.0);
        d.text(5.0, 5.0, "hi <&>", 10.0, "middle");
        let s = d.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(s.contains("hi &lt;&amp;&gt;"));
        assert!(s.contains("viewBox=\"0 0 100 50\""));
    }

    #[test]
    fn polyline_requires_two_points() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.polyline(&[(1.0, 1.0)], "#000", 1.0);
        assert!(!d.finish().contains("polyline"));
        d.polyline(&[(1.0, 1.0), (2.0, 2.0)], "#000", 1.0);
        assert!(d.finish().contains("polyline"));
    }

    #[test]
    fn ramp_endpoints_and_monotone_green() {
        assert_eq!(ramp_color(0.0), "#440154");
        assert_eq!(ramp_color(1.0), "#fde725");
        // Green channel increases along the ramp.
        let g = |t: f64| u8::from_str_radix(&ramp_color(t)[3..5], 16).unwrap();
        assert!(g(0.0) < g(0.5) && g(0.5) < g(1.0));
        // Out-of-range clamps.
        assert_eq!(ramp_color(-1.0), ramp_color(0.0));
        assert_eq!(ramp_color(2.0), ramp_color(1.0));
    }
}
