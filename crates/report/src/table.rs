//! Aligned plain-text tables.

use crate::error::ReportError;

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Like [`TextTable::render`], but rejects a table with zero data
    /// rows — printing a header over nothing usually means an upstream
    /// computation silently produced no results.
    pub fn try_render(&self) -> Result<String, ReportError> {
        if self.rows.is_empty() {
            return Err(ReportError::EmptyData { what: "table rows" });
        }
        Ok(self.render())
    }

    /// Renders the table: title, rule, header, rule, rows. Numeric-
    /// looking cells are right-aligned, text left-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let numericish = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_digit() || ".,%-+:eE".contains(c))
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        out.push_str(&rule);
        out.push('\n');
        let fmt_row = |cells: &[String], out: &mut String| {
            let parts: Vec<String> = (0..cols)
                .map(|i| {
                    let cell = &cells[i];
                    if numericish(cell) {
                        format!(" {:>width$} ", cell, width = widths[i])
                    } else {
                        format!(" {:<width$} ", cell, width = widths[i])
                    }
                })
                .collect();
            out.push_str(&parts.join("|"));
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out.push_str(&rule);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["beta".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        assert!(s.contains("22"));
        // Header appears before rows.
        assert!(s.find("name").unwrap() < s.find("alpha").unwrap());
    }

    #[test]
    fn columns_are_aligned() {
        let mut t = TextTable::new("", &["k", "v"]);
        t.row(&["aa".into(), "1".into()]);
        t.row(&["b".into(), "100".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // All rendered lines have equal width.
        let w = lines[0].len();
        for l in &lines {
            assert_eq!(l.len(), w, "line {l:?}");
        }
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = TextTable::new("", &["n"]);
        t.row(&["5".into()]);
        t.row(&["50000".into()]);
        let s = t.render();
        assert!(s.contains("     5 "), "got {s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn zero_rows_error_gracefully() {
        let t = TextTable::new("empty", &["a", "b"]);
        let err = t.try_render().unwrap_err();
        assert_eq!(err, ReportError::EmptyData { what: "table rows" });
        let mut filled = TextTable::new("t", &["a"]);
        filled.row(&["1".into()]);
        assert_eq!(filled.try_render().unwrap(), filled.render());
    }

    #[test]
    fn row_display_converts() {
        let mut t = TextTable::new("", &["x", "y"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("2.25"));
    }
}
