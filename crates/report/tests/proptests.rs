//! Property-based tests for the rendering layer.

use leo_report::{CsvWriter, MarkdownTable, TextTable};
use proptest::prelude::*;

/// A tiny RFC-4180 parser used only to verify the writer round-trips.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

fn field_strategy() -> impl Strategy<Value = String> {
    // Printable text including the characters that need escaping.
    proptest::string::string_regex("[ -~\n\"]{0,24}").expect("valid regex")
}

proptest! {
    #[test]
    fn csv_round_trips_through_a_parser(
        rows in proptest::collection::vec(
            proptest::collection::vec(field_strategy(), 3), 1..20)
    ) {
        let mut w = CsvWriter::new();
        for r in &rows {
            w.record(r);
        }
        let parsed = parse_csv(w.finish());
        prop_assert_eq!(parsed.len(), rows.len());
        for (a, b) in parsed.iter().zip(rows.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn text_table_lines_are_uniform_width(
        cells in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,16}", 2), 1..10)
    ) {
        let mut t = TextTable::new("T", &["a", "b"]);
        for row in &cells {
            t.row(&[row[0].clone(), row[1].clone()]);
        }
        let rendered = t.render();
        let widths: Vec<usize> = rendered.lines().skip(1).map(str::len).collect();
        for w in &widths {
            prop_assert_eq!(*w, widths[0]);
        }
    }

    #[test]
    fn markdown_never_leaks_unescaped_pipes(
        cells in proptest::collection::vec("[ -~]{0,16}", 1..10)
    ) {
        let mut t = MarkdownTable::new(&["x"]);
        for c in &cells {
            t.row(std::slice::from_ref(c));
        }
        for line in t.render().lines().skip(2) {
            // Data lines: after stripping escaped pipes and the 2
            // delimiters, no bare pipe remains.
            let stripped = line.replace("\\|", "");
            prop_assert_eq!(stripped.matches('|').count(), 2, "line {:?}", line);
        }
    }
}
