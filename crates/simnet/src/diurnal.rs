//! Diurnal residential demand profiles.
//!
//! Residential broadband demand follows a strong daily rhythm: a deep
//! overnight trough, a daytime plateau, and an evening peak (the "busy
//! hour", typically 20:00–22:00 local). Oversubscription planning is
//! entirely about that peak — the paper's P2 ("peak bandwidth demand
//! density … determines LEO constellation size") is this observation
//! lifted to constellation scale.

/// A 24-hour demand profile: multiplicative weights per hour, with the
/// peak hour normalized to 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl DiurnalProfile {
    /// Builds a profile from raw hourly weights (peak normalized to 1).
    pub fn new(mut weights: [f64; 24]) -> Self {
        let max = weights.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 0.0, "profile must have positive demand somewhere");
        for w in &mut weights {
            assert!(*w >= 0.0, "weights must be non-negative");
            *w /= max;
        }
        DiurnalProfile { weights }
    }

    /// A typical residential fixed-broadband profile: trough at ~04:00
    /// (≈18 % of peak), evening peak 20:00–21:00.
    pub fn residential() -> Self {
        DiurnalProfile::new([
            0.38, 0.28, 0.22, 0.19, 0.18, 0.20, // 00-05
            0.26, 0.34, 0.42, 0.48, 0.52, 0.55, // 06-11
            0.58, 0.60, 0.62, 0.66, 0.72, 0.80, // 12-17
            0.88, 0.96, 1.00, 0.99, 0.86, 0.58, // 18-23
        ])
    }

    /// A flat profile (useful for analytic cross-checks).
    pub fn flat() -> Self {
        DiurnalProfile::new([1.0; 24])
    }

    /// Demand weight at a continuous time-of-day in hours `[0, 24)`,
    /// linearly interpolated between hourly samples.
    pub fn weight_at(&self, hour_of_day: f64) -> f64 {
        let h = hour_of_day.rem_euclid(24.0);
        let i = h.floor() as usize % 24;
        let j = (i + 1) % 24;
        let t = h - h.floor();
        self.weights[i] * (1.0 - t) + self.weights[j] * t
    }

    /// The hour with peak demand.
    pub fn busy_hour(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Mean weight over the day (the average-to-peak demand ratio).
    pub fn mean_weight(&self) -> f64 {
        self.weights.iter().sum::<f64>() / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residential_peak_is_normalized_and_in_the_evening() {
        let p = DiurnalProfile::residential();
        let bh = p.busy_hour();
        assert!((19..=21).contains(&bh), "busy hour {bh}");
        assert_eq!(p.weight_at(bh as f64), 1.0);
    }

    #[test]
    fn trough_is_overnight() {
        let p = DiurnalProfile::residential();
        assert!(p.weight_at(4.0) < 0.25);
        assert!(p.weight_at(20.0) > 0.95);
    }

    #[test]
    fn interpolation_is_continuous() {
        let p = DiurnalProfile::residential();
        for k in 0..240 {
            let h = k as f64 / 10.0;
            let a = p.weight_at(h);
            let b = p.weight_at(h + 0.1);
            assert!((a - b).abs() < 0.2, "jump at {h}");
        }
    }

    #[test]
    fn wraps_around_midnight() {
        let p = DiurnalProfile::residential();
        assert!((p.weight_at(24.0) - p.weight_at(0.0)).abs() < 1e-12);
        assert!((p.weight_at(-1.0) - p.weight_at(23.0)).abs() < 1e-12);
    }

    #[test]
    fn flat_profile_is_constant() {
        let p = DiurnalProfile::flat();
        assert_eq!(p.mean_weight(), 1.0);
        assert_eq!(p.weight_at(13.37), 1.0);
    }

    #[test]
    fn mean_weight_is_between_trough_and_peak() {
        let p = DiurnalProfile::residential();
        let m = p.mean_weight();
        assert!((0.3..0.9).contains(&m), "mean {m}");
    }
}
