//! Max-min fair rate allocation with per-flow caps (water-filling).
//!
//! A beam's downlink capacity is shared among active flows the way a
//! well-behaved scheduler (or TCP in aggregate) shares a bottleneck:
//! every flow gets an equal share unless its own cap (the subscriber's
//! plan rate) is lower, in which case the surplus is redistributed —
//! the classic max-min fairness definition.

/// Computes the max-min fair allocation of `capacity` among flows with
/// the given rate `caps`. Returns per-flow rates in input order.
///
/// Properties (tested below and by the property suite):
/// * `rates[i] ≤ caps[i]`
/// * `Σ rates = min(capacity, Σ caps)`
/// * any flow not at its cap receives the common share, which is the
///   maximum over feasible allocations (max-min optimality).
pub fn max_min_fair(capacity: f64, caps: &[f64]) -> Vec<f64> {
    assert!(capacity >= 0.0, "negative capacity");
    let n = caps.len();
    if n == 0 {
        return Vec::new();
    }
    for &c in caps {
        assert!(
            c >= 0.0 && c.is_finite(),
            "caps must be finite and non-negative"
        );
    }
    // Water-filling over the sorted caps: once the per-flow share
    // exceeds a flow's cap, that flow is frozen at its cap.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        caps[a]
            .partial_cmp(&caps[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rates = vec![0.0; n];
    let mut remaining = capacity;
    let mut left = n;
    for (k, &i) in order.iter().enumerate() {
        let share = remaining / left as f64;
        if caps[i] <= share {
            rates[i] = caps[i];
            remaining -= caps[i];
            left -= 1;
        } else {
            // Every remaining flow has cap > share: they all get the
            // equal share.
            for &j in &order[k..] {
                rates[j] = share;
            }
            return rates;
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn equal_split_when_uncapped() {
        let rates = max_min_fair(100.0, &[1000.0, 1000.0, 1000.0, 1000.0]);
        for r in &rates {
            assert!((r - 25.0).abs() < 1e-12);
        }
    }

    #[test]
    fn caps_bind_and_surplus_redistributes() {
        // One tiny flow frees capacity for the other two.
        let rates = max_min_fair(100.0, &[10.0, 1000.0, 1000.0]);
        assert!((rates[0] - 10.0).abs() < 1e-12);
        assert!((rates[1] - 45.0).abs() < 1e-12);
        assert!((rates[2] - 45.0).abs() < 1e-12);
    }

    #[test]
    fn underload_gives_everyone_their_cap() {
        let caps = [10.0, 20.0, 30.0];
        let rates = max_min_fair(100.0, &caps);
        for (r, c) in rates.iter().zip(caps.iter()) {
            assert!((r - c).abs() < 1e-12);
        }
        assert!((total(&rates) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn conservation() {
        let caps = [5.0, 50.0, 100.0, 100.0, 3.0];
        let rates = max_min_fair(120.0, &caps);
        assert!((total(&rates) - 120.0f64.min(total(&caps))).abs() < 1e-9);
        for (r, c) in rates.iter().zip(caps.iter()) {
            assert!(*r <= c + 1e-12);
        }
    }

    #[test]
    fn empty_and_zero_cases() {
        assert!(max_min_fair(10.0, &[]).is_empty());
        let rates = max_min_fair(0.0, &[10.0, 10.0]);
        assert_eq!(rates, vec![0.0, 0.0]);
        let rates = max_min_fair(10.0, &[0.0, 10.0]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn order_independence() {
        let a = max_min_fair(77.0, &[10.0, 40.0, 100.0]);
        let b = max_min_fair(77.0, &[100.0, 10.0, 40.0]);
        assert!((a[0] - b[1]).abs() < 1e-12);
        assert!((a[1] - b[2]).abs() < 1e-12);
        assert!((a[2] - b[0]).abs() < 1e-12);
    }

    #[test]
    fn max_min_optimality_spot_check() {
        // The minimum allocation is as large as feasible: with capacity
        // 90 and caps [100, 100, 20], max-min gives [35, 35, 20]; no
        // feasible allocation has min > 30 for the uncapped pair
        // while... verify the canonical result directly.
        let rates = max_min_fair(90.0, &[100.0, 100.0, 20.0]);
        assert!((rates[2] - 20.0).abs() < 1e-12);
        assert!((rates[0] - 35.0).abs() < 1e-12);
        assert!((rates[1] - 35.0).abs() < 1e-12);
    }
}

/// Weighted max-min fairness: flow `i` receives rate proportional to
/// `weights[i]` until its cap binds (weighted water-filling). Used to
/// model mixed plan tiers sharing one beam (e.g. Priority subscribers
/// at weight 2 alongside Residential at weight 1).
pub fn weighted_max_min_fair(capacity: f64, caps: &[f64], weights: &[f64]) -> Vec<f64> {
    assert!(capacity >= 0.0, "negative capacity");
    assert_eq!(caps.len(), weights.len(), "caps/weights length mismatch");
    let n = caps.len();
    if n == 0 {
        return Vec::new();
    }
    for (&c, &w) in caps.iter().zip(weights) {
        assert!(
            c >= 0.0 && c.is_finite(),
            "caps must be finite and non-negative"
        );
        assert!(w > 0.0 && w.is_finite(), "weights must be positive");
    }
    // Water-fill on the normalized level `cap/weight`.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (caps[a] / weights[a])
            .partial_cmp(&(caps[b] / weights[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rates = vec![0.0; n];
    let mut remaining = capacity;
    let mut weight_left: f64 = weights.iter().sum();
    for (k, &i) in order.iter().enumerate() {
        let level = remaining / weight_left;
        if caps[i] <= level * weights[i] {
            rates[i] = caps[i];
            remaining -= caps[i];
            weight_left -= weights[i];
        } else {
            for &j in &order[k..] {
                rates[j] = level * weights[j];
            }
            return rates;
        }
    }
    rates
}

#[cfg(test)]
mod weighted_tests {
    use super::*;

    #[test]
    fn reduces_to_unweighted_with_equal_weights() {
        let caps = [5.0, 50.0, 100.0, 3.0];
        let w = [1.0; 4];
        let a = weighted_max_min_fair(60.0, &caps, &w);
        let b = max_min_fair(60.0, &caps);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn double_weight_doubles_the_share() {
        let rates = weighted_max_min_fair(90.0, &[1000.0, 1000.0, 1000.0], &[1.0, 1.0, 2.0]);
        assert!((rates[0] - 22.5).abs() < 1e-12);
        assert!((rates[1] - 22.5).abs() < 1e-12);
        assert!((rates[2] - 45.0).abs() < 1e-12);
    }

    #[test]
    fn caps_still_bind() {
        let rates = weighted_max_min_fair(90.0, &[10.0, 1000.0], &[5.0, 1.0]);
        assert!((rates[0] - 10.0).abs() < 1e-12);
        assert!((rates[1] - 80.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_weighted() {
        let caps = [5.0, 40.0, 100.0, 100.0];
        let w = [1.0, 2.0, 1.0, 3.0];
        let rates = weighted_max_min_fair(120.0, &caps, &w);
        let total: f64 = rates.iter().sum();
        let cap_total: f64 = caps.iter().sum();
        assert!((total - 120.0f64.min(cap_total)).abs() < 1e-9);
        for (r, c) in rates.iter().zip(caps.iter()) {
            assert!(*r <= c + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = weighted_max_min_fair(10.0, &[1.0], &[1.0, 2.0]);
    }
}
