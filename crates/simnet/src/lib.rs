//! # leo-simnet
//!
//! A flow-level discrete-event simulator for a shared satellite beam —
//! the EXT-QOE experiment (DESIGN.md §5).
//!
//! The paper's Finding 1 asserts that a 35:1 oversubscription ratio
//! "would likely result in many users in this particular cell not
//! receiving 100/20 service from Starlink." This crate quantifies that
//! claim: a service cell's downlink behaves as a processor-sharing
//! queue — every active flow gets an equal share of the cell's
//! capacity, capped at the subscriber's 100 Mbps plan rate. Flows
//! arrive as a time-inhomogeneous Poisson process driven by a diurnal
//! demand profile whose intensity scales with the number of subscribers
//! (i.e., with the oversubscription ratio), and flow sizes are heavy
//! tailed.
//!
//! Modules:
//!
//! * [`diurnal`] — the 24-hour residential demand profile;
//! * [`fairshare`] — max-min fair (water-filling) rate allocation with
//!   per-flow caps;
//! * [`sim`] — the event-driven processor-sharing engine;
//! * [`qoe`] — the oversubscription → service-quality experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diurnal;
pub mod fairshare;
pub mod qoe;
pub mod sim;
pub mod workload;

pub use diurnal::DiurnalProfile;
pub use fairshare::{max_min_fair, weighted_max_min_fair};
pub use qoe::{busy_hour_experiment, QoeReport};
pub use sim::{CellSim, FlowRecord, SimConfig};
pub use workload::SizeDistribution;
