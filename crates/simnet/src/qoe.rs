//! Service-quality metrics versus oversubscription (EXT-QOE).
//!
//! The experiment the paper implies but does not run: put a cell at
//! oversubscription ratios between the FCC benchmark (20:1) and the
//! peak-cell requirement (35:1) and measure what subscribers actually
//! experience during the busy hour.

use crate::sim::{CellSim, FlowRecord, SimConfig};

/// Busy-hour service quality at one oversubscription ratio.
#[derive(Debug, Clone)]
pub struct QoeReport {
    /// The oversubscription ratio simulated.
    pub oversub: f64,
    /// Subscribers in the cell.
    pub subscribers: u64,
    /// Completed flows measured.
    pub flows: usize,
    /// Mean flow throughput, Mbps.
    pub mean_mbps: f64,
    /// Median flow throughput, Mbps.
    pub median_mbps: f64,
    /// 10th-percentile flow throughput, Mbps.
    pub p10_mbps: f64,
    /// Fraction of flows that ran at ≥ 95 % of the plan rate — i.e.
    /// subscribers who actually received the broadband they bought.
    pub full_speed_fraction: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Summarizes a flow trace into a [`QoeReport`].
pub fn summarize(oversub: f64, cfg: &SimConfig, records: &[FlowRecord]) -> QoeReport {
    let mut tputs: Vec<f64> = records.iter().map(FlowRecord::throughput_mbps).collect();
    tputs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = tputs.len();
    let mean = if n == 0 {
        0.0
    } else {
        tputs.iter().sum::<f64>() / n as f64
    };
    let full = if n == 0 {
        0.0
    } else {
        tputs
            .iter()
            .filter(|&&t| t >= 0.95 * cfg.plan_rate_mbps)
            .count() as f64
            / n as f64
    };
    QoeReport {
        oversub,
        subscribers: cfg.subscribers,
        flows: n,
        mean_mbps: mean,
        median_mbps: percentile(&tputs, 0.5),
        p10_mbps: percentile(&tputs, 0.1),
        full_speed_fraction: full,
    }
}

/// Runs the busy-hour experiment at each oversubscription ratio over a
/// cell with `capacity_gbps` of downlink. The paper's reference points
/// are {5, 10, 20, 35}.
pub fn busy_hour_experiment(capacity_gbps: f64, oversubs: &[f64], seed: u64) -> Vec<QoeReport> {
    oversubs
        .iter()
        .map(|&rho| {
            let cfg = SimConfig::oversubscribed_cell(capacity_gbps, rho, seed);
            let records = CellSim::new(cfg.clone()).run();
            summarize(rho, &cfg, &records)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_degrades_monotonically_with_oversubscription() {
        let reports = busy_hour_experiment(0.5, &[5.0, 10.0, 20.0, 35.0], 7);
        assert_eq!(reports.len(), 4);
        for w in reports.windows(2) {
            assert!(
                w[1].median_mbps <= w[0].median_mbps + 5.0,
                "median rose: {} -> {}",
                w[0].median_mbps,
                w[1].median_mbps
            );
            assert!(w[1].full_speed_fraction <= w[0].full_speed_fraction + 0.05);
        }
    }

    #[test]
    fn paper_claim_35_to_1_denies_many_users_full_speed() {
        // F1's qualitative claim: at 35:1, "many users … not receiving
        // 100/20 service".
        let r = &busy_hour_experiment(0.5, &[35.0], 7)[0];
        assert!(
            r.full_speed_fraction < 0.7,
            "at 35:1, {} of flows still ran at full speed",
            r.full_speed_fraction
        );
        assert!(r.mean_mbps < 95.0);
    }

    #[test]
    fn light_oversubscription_is_fine() {
        let r = &busy_hour_experiment(0.5, &[5.0], 7)[0];
        assert!(
            r.full_speed_fraction > 0.8,
            "at 5:1 only {} at full speed",
            r.full_speed_fraction
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let r = &busy_hour_experiment(0.5, &[20.0], 7)[0];
        assert!(r.p10_mbps <= r.median_mbps);
        assert!(r.median_mbps <= 100.0 + 1e-6);
        assert!(r.flows > 100);
        assert_eq!(r.subscribers, 100); // 0.5 Gbps × 20 / 100 Mbps
    }

    #[test]
    fn empty_trace_summarizes_to_zeros() {
        let cfg = SimConfig::oversubscribed_cell(0.5, 1.0, 1);
        let r = summarize(1.0, &cfg, &[]);
        assert_eq!(r.flows, 0);
        assert_eq!(r.mean_mbps, 0.0);
        assert_eq!(r.full_speed_fraction, 0.0);
    }
}

#[cfg(test)]
mod tail_weight {
    use super::*;
    use crate::sim::{CellSim, SimConfig};
    use crate::workload::SizeDistribution;

    /// At matched offered load, heavier-tailed flow sizes degrade the
    /// experience of the *unlucky* flows (elephants monopolize the
    /// queue for long stretches) even when the mean stays put — the
    /// reason oversubscription planning can't rely on average load
    /// alone. A 2-hour busy-hour trace is noisy (a single elephant
    /// shifts p10 by several Mbps), so the comparison averages over
    /// independent seeds rather than trusting one realization.
    #[test]
    fn heavy_tails_hurt_the_low_percentiles() {
        let seeds = [31u64, 32, 33, 34, 35];
        let mut p10_light = 0.0;
        let mut p10_heavy = 0.0;
        for &seed in &seeds {
            let mut base = SimConfig::oversubscribed_cell(0.5, 30.0, seed);
            base.duration_h = 2.0;
            let light = CellSim::new(base.clone()).run();
            let mut heavy_cfg = base.clone();
            heavy_cfg.sizes = SizeDistribution::heavy_tailed_default();
            let heavy = CellSim::new(heavy_cfg.clone()).run();
            let r_light = summarize(30.0, &base, &light);
            let r_heavy = summarize(30.0, &heavy_cfg, &heavy);
            assert!(r_heavy.flows > 100 && r_light.flows > 100);
            p10_light += r_light.p10_mbps / seeds.len() as f64;
            p10_heavy += r_heavy.p10_mbps / seeds.len() as f64;
        }
        // Medians are close (same load), but the heavy tail's p10 is
        // no better on average.
        assert!(
            p10_heavy <= p10_light + 5.0,
            "heavy p10 {p10_heavy} vs light {p10_light}"
        );
    }
}
