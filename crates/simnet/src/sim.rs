//! Event-driven processor-sharing simulation of one service cell.
//!
//! Flows arrive as an inhomogeneous Poisson process (intensity driven
//! by the diurnal profile and the subscriber count), carry heavy-tailed
//! sizes, and share the cell's downlink capacity max-min fairly. With a
//! uniform plan rate — the paper's setting, every location buys the
//! same 100 Mbps product — the max-min allocation degenerates to
//! `min(plan, C/n)` for all `n` active flows, which admits the classic
//! exact processor-sharing simulation: track cumulative per-flow
//! *virtual service* `V(t)`; a flow arriving at `V_a` with size `S`
//! completes when `V = V_a + S`. Between events `V` grows at the
//! current common rate, so the engine needs only a heap of completion
//! thresholds — no per-flow bookkeeping on the hot path and no
//! time-stepping error.

use crate::diurnal::DiurnalProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Configuration of a cell simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cell downlink capacity, Gbps.
    pub capacity_gbps: f64,
    /// Subscriber plan rate, Mbps (the FCC 100 Mbps product).
    pub plan_rate_mbps: f64,
    /// Number of subscribers sharing the cell.
    pub subscribers: u64,
    /// Offered traffic per subscriber at the busy hour, Mbps — the
    /// standard ISP planning figure (2–3 Mbps for residential fixed
    /// broadband).
    pub busy_hour_mbps_per_sub: f64,
    /// Flow-size distribution.
    pub sizes: crate::workload::SizeDistribution,
    /// Diurnal demand profile.
    pub profile: DiurnalProfile,
    /// Simulation start, hours from midnight.
    pub start_hour: f64,
    /// Simulated span, hours.
    pub duration_h: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// A cell served at `oversub`:1 oversubscription from
    /// `capacity_gbps` of spectrum: the subscriber count is exactly
    /// what that ratio implies.
    pub fn oversubscribed_cell(capacity_gbps: f64, oversub: f64, seed: u64) -> Self {
        let plan = 100.0;
        SimConfig {
            capacity_gbps,
            plan_rate_mbps: plan,
            subscribers: (capacity_gbps * 1000.0 * oversub / plan).floor() as u64,
            busy_hour_mbps_per_sub: 2.5,
            sizes: crate::workload::SizeDistribution::residential_default(),
            profile: DiurnalProfile::residential(),
            start_hour: 19.0,
            duration_h: 3.0,
            seed,
        }
    }
}

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Arrival time, hours from midnight.
    pub arrival_h: f64,
    /// Flow size, bits.
    pub size_bits: f64,
    /// Flow duration, seconds.
    pub duration_s: f64,
}

impl FlowRecord {
    /// Average throughput over the flow's lifetime, Mbps.
    pub fn throughput_mbps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return f64::INFINITY;
        }
        self.size_bits / self.duration_s / 1e6
    }
}

/// The cell simulator.
#[derive(Debug)]
pub struct CellSim {
    cfg: SimConfig,
}

/// Heap entry: completion threshold in virtual-service space.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    v_done: f64,
    arrival_s: f64,
    size_bits: f64,
}

impl Eq for Completion {}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on v_done via reversed comparison.
        other
            .v_done
            .partial_cmp(&self.v_done)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl CellSim {
    /// Creates a simulator.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.capacity_gbps > 0.0 && cfg.plan_rate_mbps > 0.0);
        assert!(cfg.duration_h > 0.0 && cfg.sizes.mean_bits() > 0.0);
        CellSim { cfg }
    }

    /// Arrival intensity at `t_s` seconds past the simulation start,
    /// flows per second.
    fn lambda(&self, t_s: f64) -> f64 {
        let hour = self.cfg.start_hour + t_s / 3600.0;
        let offered_bps = self.cfg.subscribers as f64
            * self.cfg.busy_hour_mbps_per_sub
            * 1e6
            * self.cfg.profile.weight_at(hour);
        offered_bps / self.cfg.sizes.mean_bits()
    }

    /// Runs the simulation, returning every flow that *completed*
    /// within the span (flows still active at the end are discarded —
    /// a small right-censoring the QoE layer tolerates).
    pub fn run(&self) -> Vec<FlowRecord> {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let span_s = cfg.duration_h * 3600.0;
        let cap_bps = cfg.capacity_gbps * 1e9;
        let plan_bps = cfg.plan_rate_mbps * 1e6;
        let sample_size = |rng: &mut StdRng| -> f64 { cfg.sizes.sample(rng) };
        // Peak arrival intensity for thinning.
        let lambda_max = (0..=(cfg.duration_h.ceil() as u32))
            .map(|h| self.lambda(h as f64 * 3600.0))
            .fold(0.0, f64::max)
            .max(1e-12);

        let mut t = 0.0f64; // seconds
        let mut v = 0.0f64; // cumulative per-flow virtual service, bits
        let mut active: BinaryHeap<Completion> = BinaryHeap::new();
        let mut records = Vec::new();

        // Next accepted arrival time, via Poisson thinning.
        let next_arrival = |rng: &mut StdRng, mut from: f64| -> f64 {
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                from += -u.ln() / lambda_max;
                if from > span_s {
                    return f64::INFINITY;
                }
                if rng.gen_range(0.0..1.0) < self.lambda(from) / lambda_max {
                    return from;
                }
            }
        };
        let mut arrival_t = next_arrival(&mut rng, 0.0);

        loop {
            let n = active.len();
            let rate = if n == 0 {
                0.0
            } else {
                plan_bps.min(cap_bps / n as f64)
            };
            // Time until the earliest completion at the current rate.
            let completion_t = active
                .peek()
                .filter(|_| rate > 0.0)
                .map(|c| t + (c.v_done - v) / rate)
                .unwrap_or(f64::INFINITY);

            if arrival_t.is_infinite() && completion_t.is_infinite() {
                break;
            }
            if arrival_t <= completion_t {
                // Advance virtual time, then admit the flow.
                v += rate * (arrival_t - t);
                t = arrival_t;
                let size = sample_size(&mut rng);
                active.push(Completion {
                    v_done: v + size,
                    arrival_s: t,
                    size_bits: size,
                });
                arrival_t = next_arrival(&mut rng, t);
            } else {
                if completion_t > span_s {
                    // Remaining flows finish after the horizon; censor.
                    break;
                }
                v += rate * (completion_t - t);
                t = completion_t;
                let done = active.pop().expect("peeked above");
                records.push(FlowRecord {
                    arrival_h: cfg.start_hour + done.arrival_s / 3600.0,
                    size_bits: done.size_bits,
                    duration_s: t - done.arrival_s,
                });
            }
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(oversub: f64) -> SimConfig {
        let mut cfg = SimConfig::oversubscribed_cell(0.5, oversub, 42);
        cfg.duration_h = 1.0;
        cfg
    }

    #[test]
    fn uncongested_cell_serves_at_plan_rate() {
        // 1:1 oversubscription, load ~2.5% — flows should run at or
        // near the 100 Mbps plan rate.
        let records = CellSim::new(quick_cfg(1.0)).run();
        assert!(records.len() > 20, "only {} flows", records.len());
        let near_plan = records
            .iter()
            .filter(|r| r.throughput_mbps() > 90.0)
            .count() as f64
            / records.len() as f64;
        assert!(near_plan > 0.9, "fraction near plan {near_plan}");
    }

    #[test]
    fn heavily_oversubscribed_cell_degrades() {
        let light = CellSim::new(quick_cfg(5.0)).run();
        let heavy = CellSim::new(quick_cfg(35.0)).run();
        let mean = |rs: &[FlowRecord]| {
            rs.iter().map(FlowRecord::throughput_mbps).sum::<f64>() / rs.len() as f64
        };
        assert!(
            mean(&heavy) < mean(&light) * 0.8,
            "heavy {} vs light {}",
            mean(&heavy),
            mean(&light)
        );
    }

    #[test]
    fn throughput_never_exceeds_plan_rate() {
        let records = CellSim::new(quick_cfg(10.0)).run();
        for r in &records {
            assert!(
                r.throughput_mbps() <= 100.0 + 1e-6,
                "{}",
                r.throughput_mbps()
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CellSim::new(quick_cfg(10.0)).run();
        let b = CellSim::new(quick_cfg(10.0)).run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn flow_count_tracks_offered_load() {
        // Expected flows ≈ ∫λ dt; check within 3σ-ish.
        let cfg = quick_cfg(20.0);
        let sim = CellSim::new(cfg.clone());
        let records = sim.run();
        // At the busy window the profile ≈ 1; expected count:
        let expect =
            cfg.subscribers as f64 * cfg.busy_hour_mbps_per_sub * 1e6 * 3600.0 * cfg.duration_h
                / cfg.sizes.mean_bits()
                * 0.97; // profile average over 19:00–20:00
        let got = records.len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.25,
            "flows {got} vs expected {expect}"
        );
    }

    #[test]
    fn empty_when_no_subscribers() {
        let mut cfg = quick_cfg(1.0);
        cfg.subscribers = 0;
        assert!(CellSim::new(cfg).run().is_empty());
    }
}

#[cfg(test)]
mod littles_law {
    use super::*;
    use crate::diurnal::DiurnalProfile;

    /// Little's law (`E[N] = λ·E[T]`) must hold in the steady state of
    /// the processor-sharing engine — a strong end-to-end correctness
    /// check of the event loop, since N is never tracked explicitly.
    #[test]
    fn littles_law_holds_under_flat_load() {
        let mut cfg = SimConfig::oversubscribed_cell(0.5, 20.0, 99);
        cfg.profile = DiurnalProfile::flat();
        cfg.start_hour = 0.0;
        cfg.duration_h = 6.0;
        let sim = CellSim::new(cfg.clone());
        let records = sim.run();
        let span_s = cfg.duration_h * 3600.0;
        // λ from the realized arrivals; E[T] from realized durations;
        // E[N] from ∑durations / span (time-average occupancy).
        let lambda = records.len() as f64 / span_s;
        let mean_t: f64 = records.iter().map(|r| r.duration_s).sum::<f64>() / records.len() as f64;
        let mean_n: f64 = records.iter().map(|r| r.duration_s).sum::<f64>() / span_s;
        let rel = (mean_n - lambda * mean_t).abs() / mean_n;
        assert!(rel < 1e-9, "identity violated: {rel}");
        // And the occupancy is consistent with offered load: at 20:1
        // on 0.5 Gbps the offered load is 100 subs × 2.5 Mbps = 50% of
        // capacity; flows run near the 100 Mbps cap, so
        // N ≈ load/plan_rate = 2.5 flows on average.
        let offered_bps = cfg.subscribers as f64 * cfg.busy_hour_mbps_per_sub * 1e6;
        let expect_n = offered_bps / (cfg.plan_rate_mbps * 1e6);
        assert!(
            (mean_n - expect_n).abs() / expect_n < 0.25,
            "occupancy {mean_n} vs expected {expect_n}"
        );
    }
}
