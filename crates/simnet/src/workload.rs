//! Flow-size distributions.
//!
//! Internet flow sizes are famously heavy-tailed ("mice and
//! elephants"). The simulator supports two standard models:
//!
//! * **Lognormal** — the default; matches the body of measured
//!   residential traffic well and has all moments finite.
//! * **Bounded Pareto** — the classic heavy-tail model; the truncation
//!   keeps the mean finite even for tail exponents `α ≤ 1`.
//!
//! Both are parameterized to a target mean so the offered-load
//! arithmetic (`λ = offered_bps / E[S]`) holds regardless of shape —
//! letting experiments isolate the effect of *tail weight* on QoE at
//! fixed load.

use rand::rngs::StdRng;
use rand::Rng;

/// A flow-size distribution over sizes in **bits**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// Lognormal with the given mean (MB) and log-space σ.
    LogNormal {
        /// Mean flow size, megabytes.
        mean_mb: f64,
        /// Shape: standard deviation of `ln(size)`.
        sigma: f64,
    },
    /// Pareto truncated to `[min_mb, max_mb]` with tail exponent
    /// `alpha`.
    BoundedPareto {
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
        /// Lower bound, megabytes.
        min_mb: f64,
        /// Upper bound, megabytes.
        max_mb: f64,
    },
}

const MB_TO_BITS: f64 = 8e6;

impl SizeDistribution {
    /// The residential default: 25 MB mean, σ = 1.5.
    pub fn residential_default() -> Self {
        SizeDistribution::LogNormal {
            mean_mb: 25.0,
            sigma: 1.5,
        }
    }

    /// A heavy-tailed alternative with (approximately) the same mean as
    /// [`SizeDistribution::residential_default`]: α = 1.2 over
    /// [6 MB, 2 GB] has mean ≈ 25 MB.
    pub fn heavy_tailed_default() -> Self {
        SizeDistribution::BoundedPareto {
            alpha: 1.2,
            min_mb: 6.0,
            max_mb: 2048.0,
        }
    }

    /// Expected flow size, bits.
    pub fn mean_bits(&self) -> f64 {
        match *self {
            SizeDistribution::LogNormal { mean_mb, .. } => mean_mb * MB_TO_BITS,
            SizeDistribution::BoundedPareto {
                alpha,
                min_mb,
                max_mb,
            } => {
                // E[S] for bounded Pareto on [L, H]:
                // α L^α (H^{1−α} − L^{1−α}) / ((1−α)(1 − (L/H)^α)), α ≠ 1.
                let (l, h) = (min_mb * MB_TO_BITS, max_mb * MB_TO_BITS);
                if (alpha - 1.0).abs() < 1e-9 {
                    // α = 1: E[S] = ln(H/L) · L·H/(H−L).
                    (h / l).ln() * l * h / (h - l)
                } else {
                    alpha * l.powf(alpha) * (h.powf(1.0 - alpha) - l.powf(1.0 - alpha))
                        / ((1.0 - alpha) * (1.0 - (l / h).powf(alpha)))
                }
            }
        }
    }

    /// Samples one flow size, bits.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            SizeDistribution::LogNormal { mean_mb, sigma } => {
                let mean_bits = mean_mb * MB_TO_BITS;
                let mu = mean_bits.ln() - sigma * sigma / 2.0;
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp()
            }
            SizeDistribution::BoundedPareto {
                alpha,
                min_mb,
                max_mb,
            } => {
                // Inverse-CDF sampling of the truncated Pareto.
                let (l, h) = (min_mb * MB_TO_BITS, max_mb * MB_TO_BITS);
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = l.powf(-alpha);
                let ha = h.powf(-alpha);
                (la - u * (la - ha)).powf(-1.0 / alpha)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_mean(d: &SizeDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn lognormal_mean_matches_parameter() {
        let d = SizeDistribution::residential_default();
        let got = sample_mean(&d, 200_000, 1);
        let expect = d.mean_bits();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got} expect {expect}"
        );
    }

    #[test]
    fn pareto_mean_matches_closed_form() {
        let d = SizeDistribution::BoundedPareto {
            alpha: 1.5,
            min_mb: 1.0,
            max_mb: 1000.0,
        };
        let got = sample_mean(&d, 400_000, 2);
        let expect = d.mean_bits();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got} expect {expect}"
        );
    }

    #[test]
    fn heavy_default_mean_is_near_25_mb() {
        let mean_mb = SizeDistribution::heavy_tailed_default().mean_bits() / MB_TO_BITS;
        assert!((mean_mb - 25.0).abs() < 5.0, "mean {mean_mb} MB");
    }

    #[test]
    fn pareto_respects_bounds() {
        let d = SizeDistribution::BoundedPareto {
            alpha: 0.9,
            min_mb: 2.0,
            max_mb: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((2.0 * MB_TO_BITS - 1e-6..=10.0 * MB_TO_BITS + 1e-6).contains(&s));
        }
    }

    #[test]
    fn alpha_one_special_case() {
        let d = SizeDistribution::BoundedPareto {
            alpha: 1.0,
            min_mb: 1.0,
            max_mb: 100.0,
        };
        let analytic = d.mean_bits();
        let got = sample_mean(&d, 200_000, 4);
        assert!((got - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn pareto_is_heavier_tailed_than_lognormal() {
        // At matched means, the Pareto's 99.9th percentile dwarfs the
        // lognormal's.
        let ln = SizeDistribution::residential_default();
        let par = SizeDistribution::heavy_tailed_default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut a: Vec<f64> = (0..50_000).map(|_| ln.sample(&mut rng)).collect();
        let mut b: Vec<f64> = (0..50_000).map(|_| par.sample(&mut rng)).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let p999 = |v: &Vec<f64>| v[(v.len() as f64 * 0.999) as usize];
        // σ=1.5 lognormal is itself fat; the Pareto tail still wins.
        assert!(
            p999(&b) > p999(&a),
            "pareto {} lognormal {}",
            p999(&b),
            p999(&a)
        );
    }
}
