//! Property-based tests for the flow-level simulator.

use leo_simnet::{max_min_fair, weighted_max_min_fair, CellSim, SimConfig};
use proptest::prelude::*;

fn caps() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1..200.0f64, 1..40)
}

proptest! {
    #[test]
    fn fairshare_feasibility_and_conservation(capacity in 0.0..1000.0f64, caps in caps()) {
        let rates = max_min_fair(capacity, &caps);
        prop_assert_eq!(rates.len(), caps.len());
        let total: f64 = rates.iter().sum();
        let cap_total: f64 = caps.iter().sum();
        prop_assert!((total - capacity.min(cap_total)).abs() < 1e-6);
        for (r, c) in rates.iter().zip(caps.iter()) {
            prop_assert!(*r >= 0.0 && *r <= c + 1e-9);
        }
    }

    #[test]
    fn fairshare_is_max_min_optimal(capacity in 1.0..500.0f64, caps in caps()) {
        // Characterization: every flow is either at its cap or at the
        // common share, and uncapped flows all receive the same rate.
        let rates = max_min_fair(capacity, &caps);
        let mut share: Option<f64> = None;
        for (r, c) in rates.iter().zip(caps.iter()) {
            if (r - c).abs() > 1e-9 {
                match share {
                    None => share = Some(*r),
                    Some(s) => prop_assert!((s - r).abs() < 1e-6, "unequal shares {s} vs {r}"),
                }
            }
        }
        // Capped flows never exceed the common share recipients.
        if let Some(s) = share {
            for (r, c) in rates.iter().zip(caps.iter()) {
                if (r - c).abs() <= 1e-9 {
                    prop_assert!(*r <= s + 1e-6);
                }
            }
        }
    }

    #[test]
    fn weighted_fairshare_scales_with_weights(capacity in 1.0..500.0f64,
                                              n in 2usize..20,
                                              w in 1.1..5.0f64) {
        // Two classes of uncapped flows: class B carries weight w and
        // must receive exactly w× class A's rate.
        let caps = vec![1e9; n * 2];
        let mut weights = vec![1.0; n];
        weights.extend(std::iter::repeat_n(w, n));
        let rates = weighted_max_min_fair(capacity, &caps, &weights);
        let a = rates[0];
        let b = rates[n];
        prop_assert!((b - w * a).abs() < 1e-6, "a={a} b={b} w={w}");
    }

    #[test]
    fn simulation_respects_plan_rate(oversub in 1.0..40.0f64, seed in 0u64..50) {
        let mut cfg = SimConfig::oversubscribed_cell(0.1, oversub, seed);
        cfg.duration_h = 0.25;
        let records = CellSim::new(cfg.clone()).run();
        for r in &records {
            prop_assert!(r.throughput_mbps() <= cfg.plan_rate_mbps + 1e-6);
            prop_assert!(r.duration_s > 0.0);
            prop_assert!(r.size_bits > 0.0);
            prop_assert!(r.arrival_h >= cfg.start_hour);
            prop_assert!(r.arrival_h <= cfg.start_hour + cfg.duration_h);
        }
    }

    #[test]
    fn simulation_is_deterministic(seed in 0u64..20) {
        let mut cfg = SimConfig::oversubscribed_cell(0.2, 15.0, seed);
        cfg.duration_h = 0.2;
        let a = CellSim::new(cfg.clone()).run();
        let b = CellSim::new(cfg).run();
        prop_assert_eq!(a, b);
    }
}
