//! Trace exporters: Chrome Trace Event JSON and folded flamegraph
//! stacks, both rendered through `leo_obs::json` (no serde anywhere in
//! the workspace).
//!
//! ## `trace.json` — Chrome Trace Event format
//!
//! The JSON-object form (`{"traceEvents": [...]}`) with one process
//! (`pid` 1) and one Chrome thread per lane (`tid` = lane index,
//! named via `thread_name` metadata events). Span boundaries are `B`/
//! `E` duration events, cache markers are thread-scoped `i` instants,
//! worker chunks are `X` complete events carrying `chunk`/`lo`/`hi`
//! args, and memory samples on the `mem` lane are `C` counter events
//! (`heap_bytes`/`rss_kb`) that Perfetto draws as counter tracks.
//! Timestamps are microseconds since the trace epoch, as the format
//! requires; load the file in <https://ui.perfetto.dev> or
//! `chrome://tracing` unmodified.
//!
//! ## `trace.folded` — folded stacks
//!
//! One `lane;frame;frame <nanoseconds>` line per distinct stack, the
//! input format of `flamegraph.pl` and speedscope. Durations are
//! *exclusive* (self time); because exclusive segments telescope, the
//! sum over a stage's subtree equals the span registry's inclusive
//! `total_ns` for that stage exactly — `scripts/tier1.sh` cross-checks
//! the two against the run manifest (main lane only: worker-lane
//! chunks carry their owning `stage.*` span path as intermediate
//! frames, so worker busy time telescopes under the dispatching stage
//! in a flamegraph rather than floating as lane-level orphans).

use crate::{Event, EventKind};
use leo_obs::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

fn ts_us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1000.0)
}

fn event_json(tid: usize, ev: &Event) -> Json {
    let mut e = Json::obj()
        .set("name", ev.name.as_str())
        .set("pid", 1u64)
        .set("tid", tid);
    e = match ev.kind {
        EventKind::Begin => e.set("ph", "B").set("ts", ts_us(ev.ts_ns)),
        EventKind::End => e.set("ph", "E").set("ts", ts_us(ev.ts_ns)),
        EventKind::Instant => e.set("ph", "i").set("s", "t").set("ts", ts_us(ev.ts_ns)),
        EventKind::Complete { dur_ns } => e
            .set("ph", "X")
            .set("ts", ts_us(ev.ts_ns))
            .set("dur", ts_us(dur_ns)),
        EventKind::Counter => e.set("ph", "C").set("ts", ts_us(ev.ts_ns)),
    };
    if !ev.args.is_empty() || ev.parent.is_some() {
        let mut args = Json::obj();
        for &(k, v) in &ev.args {
            args = args.set(k, v);
        }
        if let Some(parent) = &ev.parent {
            args = args.set("parent", parent.as_str());
        }
        e = e.set("args", args);
    }
    e
}

/// Renders the current trace snapshot as a Chrome Trace Event
/// document.
pub fn chrome_trace() -> Json {
    let lanes = crate::snapshot();
    let mut events = vec![Json::obj()
        .set("name", "process_name")
        .set("ph", "M")
        .set("pid", 1u64)
        .set("tid", 0u64)
        .set("args", Json::obj().set("name", "divide"))];
    for (tid, lane) in lanes.iter().enumerate() {
        events.push(
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 1u64)
                .set("tid", tid)
                .set("args", Json::obj().set("name", lane.label.as_str())),
        );
    }
    for (tid, lane) in lanes.iter().enumerate() {
        for ev in &lane.events {
            events.push(event_json(tid, ev));
        }
    }
    Json::obj()
        .set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms")
}

/// Renders the current trace snapshot as folded flamegraph stacks
/// (exclusive nanoseconds, sorted by stack string).
pub fn folded_stacks() -> String {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for lane in crate::snapshot() {
        let mut stack: Vec<String> = vec![lane.label.clone()];
        // Timestamp since which the current stack has been the one
        // running; only attributed while at least one span is open.
        let mut since = 0u64;
        for ev in &lane.events {
            match ev.kind {
                EventKind::Begin => {
                    if stack.len() > 1 {
                        *totals.entry(stack.join(";")).or_default() +=
                            ev.ts_ns.saturating_sub(since);
                    }
                    stack.push(ev.name.clone());
                    since = ev.ts_ns;
                }
                EventKind::End => {
                    // An End with no open span (its Begin predates a
                    // reset) is dropped rather than underflowing.
                    if stack.len() > 1 {
                        *totals.entry(stack.join(";")).or_default() +=
                            ev.ts_ns.saturating_sub(since);
                        stack.pop();
                    }
                    since = ev.ts_ns;
                }
                EventKind::Complete { dur_ns } => {
                    // A chunk dispatched from inside a span carries
                    // that span's path: render its frames between the
                    // lane and the chunk name so worker time
                    // telescopes under the owning `stage.*` subtree.
                    let key = match &ev.parent {
                        Some(parent) => {
                            format!("{};{};{}", lane.label, parent.replace('/', ";"), ev.name)
                        }
                        None => format!("{};{}", lane.label, ev.name),
                    };
                    *totals.entry(key).or_default() += dur_ns;
                }
                // Counter samples carry values, not durations; they
                // have no place on a flamegraph.
                EventKind::Instant | EventKind::Counter => {}
            }
        }
    }
    let mut out = String::new();
    for (stack, ns) in &totals {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// Writes [`chrome_trace`] to `path` (compact JSON — paper-scale
/// traces stay small, but pretty-printing would triple the bytes).
pub fn write_chrome(path: &Path) -> std::io::Result<()> {
    let mut body = chrome_trace().render();
    body.push('\n');
    leo_fault::safe_io::write_atomic(path, body.as_bytes())
}

/// Writes [`folded_stacks`] to `path` (atomic tmp+rename, like every
/// artifact writer).
pub fn write_folded(path: &Path) -> std::io::Result<()> {
    leo_fault::safe_io::write_atomic(path, folded_stacks().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Builds a small deterministic trace: outer(0..100µs) containing
    /// inner(20..60µs), one instant, an unparented worker chunk of
    /// 30µs plus a 20µs chunk owned by `outer`.
    fn record_fixture() -> Instant {
        leo_obs::set_enabled(true);
        crate::set_enabled(true);
        crate::reset();
        let epoch = crate::ensure_epoch();
        let at = |us: u64| epoch + Duration::from_micros(us);
        crate::begin("outer", at(0));
        crate::begin("inner", at(20));
        crate::end("inner", at(60));
        crate::instant("cache.hit");
        crate::end("outer", at(100));
        crate::worker_chunk(0, "parallel.par_map", None, at(10), at(40), 0, 50);
        crate::worker_chunk(
            1,
            "parallel.par_map",
            Some("outer"),
            at(50),
            at(70),
            50,
            100,
        );
        crate::counter_at("heap_bytes", &[("bytes", 4096)], at(50));
        epoch
    }

    #[test]
    fn chrome_trace_has_lanes_events_and_metadata() {
        let _lock = test_lock();
        record_fixture();
        let doc = chrome_trace();
        let rendered = doc.render();
        // Object form with the traceEvents array.
        assert!(rendered.starts_with("{\"traceEvents\":["));
        // Thread-name metadata for both lanes.
        assert!(rendered.contains("\"thread_name\""));
        assert!(rendered.contains("\"worker-0\""));
        // B/E pair for the outer span, X for the chunk, i for the hit.
        assert!(rendered.contains("\"ph\":\"B\""));
        assert!(rendered.contains("\"ph\":\"E\""));
        assert!(rendered.contains("\"ph\":\"X\""));
        assert!(rendered.contains("\"ph\":\"i\""));
        // Chunk args survive, in µs-land the chunk lasts 30.
        assert!(rendered.contains("\"lo\":0"));
        assert!(rendered.contains("\"hi\":50"));
        assert!(rendered.contains("\"dur\":30"));
        // The parented chunk carries its owning span path as an arg.
        assert!(rendered.contains("\"parent\":\"outer\""));
        // The heap sample lands on the named mem lane as a C event.
        assert!(rendered.contains("\"ph\":\"C\""));
        assert!(rendered.contains("\"mem\""));
        assert!(rendered.contains("\"bytes\":4096"));
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn folded_stacks_ignore_counter_samples() {
        let _lock = test_lock();
        record_fixture();
        let folded = folded_stacks();
        assert!(!folded.contains("heap_bytes"), "{folded}");
        assert!(!folded.contains("mem;"), "{folded}");
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn folded_stacks_telescope_to_span_totals() {
        let _lock = test_lock();
        record_fixture();
        let folded = folded_stacks();
        let mut totals = std::collections::BTreeMap::new();
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("stack ns");
            totals.insert(stack.to_string(), ns.parse::<u64>().expect("ns"));
        }
        let lane = crate::snapshot()[0].label.clone();
        // outer ran 100µs total: 60µs exclusive + inner's 40µs.
        assert_eq!(totals[&format!("{lane};outer")], 60_000);
        assert_eq!(totals[&format!("{lane};outer;inner")], 40_000);
        assert_eq!(totals["worker-0;parallel.par_map"], 30_000);
        // The chunk dispatched from inside `outer` telescopes under
        // its owning span's frames on the worker lane.
        assert_eq!(totals["worker-1;outer;parallel.par_map"], 20_000);
        let outer_total: u64 = totals
            .iter()
            .filter(|(k, _)| k.starts_with(&format!("{lane};outer")))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(outer_total, 100_000, "exclusive segments telescope");
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn writers_create_parent_directories() {
        let _lock = test_lock();
        record_fixture();
        let dir = std::env::temp_dir().join(format!("leo_trace_export_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let json_path = dir.join("nested/trace.json");
        let folded_path = dir.join("nested/trace.folded");
        write_chrome(&json_path).expect("chrome");
        write_folded(&folded_path).expect("folded");
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .contains("traceEvents"));
        assert!(!std::fs::read_to_string(&folded_path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
        crate::set_enabled(false);
        crate::reset();
    }
}
