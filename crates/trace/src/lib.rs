//! # leo-trace
//!
//! The workspace's timeline recorder: where `leo-obs` answers *how
//! much* time each span path took in total, this crate answers *when*
//! each span ran and on *which* lane. Events accumulate in per-lane
//! buffers — one lane per recording thread, plus one explicit lane per
//! `leo-parallel` worker index — and are exported on run exit as Chrome
//! Trace Event JSON (Perfetto / `chrome://tracing`) and folded
//! flamegraph stacks (see [`export`]).
//!
//! ## Feeding the recorder
//!
//! Nothing in the pipeline calls [`begin`]/[`end`] directly: enabling
//! tracing installs a span sink into `leo_obs::span`, so every existing
//! `span!` automatically lands on the timeline, carrying the *same*
//! `Instant`s the span registry times with — folded stack totals
//! therefore agree with `SpanStats` totals to the nanosecond.
//! `leo-parallel` records one [`EventKind::Complete`] per worker chunk
//! (chunk index, item range, busy duration) on that worker's lane, and
//! `leo-cache` marks hits/misses/invalidations as [`instant`] events.
//!
//! ## Switching it on
//!
//! Off by default. `DIVIDE_TRACE` (anything but empty/`0`/`off`/
//! `false`) or [`set_enabled`] turns the recorder on, but events are
//! only ever recorded while `leo_obs::enabled()` also holds —
//! `DIVIDE_OBS=off` silences tracing along with everything else. While
//! disabled, recording entry points return before touching any lane:
//! no buffers are allocated, no events retained (asserted by
//! `tests/trace.rs` through [`lane_count`]/[`event_count`]).
//!
//! ## Determinism contract
//!
//! Identical to `leo-obs`'s: the recorder only *observes*. Buffers are
//! read back exclusively by the exporters; artifacts stay byte-identical
//! with tracing on or off at any thread count (`tests/determinism.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What one timeline event marks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (Chrome phase `B`).
    Begin,
    /// A span closed (Chrome phase `E`).
    End,
    /// A point-in-time marker, e.g. a cache hit (Chrome phase `i`).
    Instant,
    /// A self-contained duration, e.g. one worker chunk (Chrome
    /// phase `X`).
    Complete {
        /// The event's duration in nanoseconds.
        dur_ns: u64,
    },
    /// A sampled counter value, e.g. live heap bytes (Chrome phase
    /// `C`). The sample's series values ride in [`Event::args`];
    /// Perfetto renders them as a stacked counter track.
    Counter,
}

/// One recorded timeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch (monotonic within a lane).
    pub ts_ns: u64,
    /// Event name (span leaf, counter name, or primitive name).
    pub name: String,
    /// What the event marks.
    pub kind: EventKind,
    /// Small integer annotations (chunk index, item range, ...).
    pub args: Vec<(&'static str, u64)>,
    /// Owning span path for events recorded off their owner's lane —
    /// worker chunks carry the dispatching stage's path here, so the
    /// folded-stack exporter can telescope `worker-N` frames under
    /// `stage.*` instead of leaving them orphaned.
    pub parent: Option<String>,
}

/// A copy of one lane: its label and every event recorded so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// Human-readable lane label (`main`, `worker-3`, `thread-7`).
    pub label: String,
    /// The lane's events in timestamp order (see [`snapshot`]).
    pub events: Vec<Event>,
}

type Buf = Arc<Mutex<Vec<Event>>>;

struct Lane {
    label: String,
    buf: Buf,
}

/// Every lane ever registered this generation, in registration order —
/// the lane's index is its Chrome `tid`.
static LANES: Mutex<Vec<Lane>> = Mutex::new(Vec::new());

/// Worker-index → lane buffer map (generation-tagged so [`reset`]
/// invalidates it without touching other threads' caches).
static WORKERS: Mutex<(u64, Vec<Option<Buf>>)> = Mutex::new((0, Vec::new()));

/// The dedicated `mem` lane for counter samples (generation-tagged
/// like [`WORKERS`]). One lane regardless of which thread samples, so
/// Perfetto shows a single continuous memory track.
static MEM_LANE: Mutex<(u64, Option<Buf>)> = Mutex::new((0, None));

/// Bumped by [`reset`]; thread-local lane caches compare against it.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The instant `ts_ns` counts from; set when tracing first turns on.
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

/// 0 = unresolved (consult `DIVIDE_TRACE`), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// This thread's lane buffer, tagged with the generation it was
    /// registered under.
    static CURRENT: RefCell<Option<(u64, Buf)>> = const { RefCell::new(None) };
}

fn tracing_requested() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("DIVIDE_TRACE") {
                Err(_) => false,
                Ok(v) => {
                    let v = v.trim().to_ascii_lowercase();
                    !(v.is_empty() || v == "0" || v == "off" || v == "false")
                }
            };
            set_enabled(on);
            on
        }
    }
}

/// Whether events are being recorded right now: tracing requested
/// (`DIVIDE_TRACE` / [`set_enabled`]) *and* observability enabled —
/// `DIVIDE_OBS=off` always wins.
pub fn enabled() -> bool {
    tracing_requested() && leo_obs::enabled()
}

/// Turns the recorder on or off for the whole process, overriding
/// `DIVIDE_TRACE`. Turning it on installs the `leo-obs` span sink so
/// every span lands on the timeline from then on.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    if on {
        ensure_epoch();
        leo_obs::span::set_sink(Some(span_sink));
    }
}

/// The span sink installed into `leo_obs::span`: forwards each span
/// boundary, with the registry's own timestamp, onto the current
/// thread's lane.
fn span_sink(phase: leo_obs::span::SpanPhase, name: &str, at: Instant) {
    match phase {
        leo_obs::span::SpanPhase::Begin => begin(name, at),
        leo_obs::span::SpanPhase::End => end(name, at),
    }
    // Span boundaries double as memory sampling points: frequent
    // enough to draw a useful heap/RSS curve, rare enough (hundreds
    // per run, never per data item) that the `/proc` read stays
    // invisible next to the stages being traced.
    sample_memory(at);
}

/// Emits heap/RSS counter samples onto the `mem` lane, timestamped
/// `at`. The installed allocator hook is the master switch for memory
/// telemetry: no hook (no tracking allocator, or `DIVIDE_ALLOC=off`)
/// means no samples at all, RSS included.
fn sample_memory(at: Instant) {
    if !enabled() {
        return;
    }
    let Some(hook) = leo_obs::resource::alloc_hook() else {
        return;
    };
    let reading = (hook.read)();
    counter_at("heap_bytes", &[("bytes", reading.current_bytes)], at);
    if let Some(rss) = leo_obs::resource::rss_kb() {
        counter_at("rss_kb", &[("kb", rss.current_kb)], at);
    }
}

fn ensure_epoch() -> Instant {
    *EPOCH.lock().get_or_insert_with(Instant::now)
}

fn ts_ns(at: Instant) -> u64 {
    // Saturates to 0 for instants predating the epoch (a span already
    // open when tracing turned on) instead of panicking.
    at.checked_duration_since(ensure_epoch())
        .map_or(0, |d| d.as_nanos() as u64)
}

/// Registers a new lane and returns its buffer. `None` labels the lane
/// after the current thread (its name, or `thread-<index>`).
fn register_lane(label: Option<String>) -> Buf {
    let mut lanes = LANES.lock();
    let label = label
        .or_else(|| std::thread::current().name().map(str::to_string))
        .unwrap_or_else(|| format!("thread-{}", lanes.len()));
    let buf: Buf = Arc::new(Mutex::new(Vec::new()));
    lanes.push(Lane {
        label,
        buf: Arc::clone(&buf),
    });
    buf
}

/// The calling thread's lane buffer, registering one on first use (and
/// re-registering after a [`reset`]).
fn current_buf() -> Buf {
    let generation = GENERATION.load(Ordering::Relaxed);
    CURRENT.with(|slot| {
        if let Some((cached_gen, buf)) = slot.borrow().as_ref() {
            if *cached_gen == generation {
                return Arc::clone(buf);
            }
        }
        let buf = register_lane(None);
        *slot.borrow_mut() = Some((generation, Arc::clone(&buf)));
        buf
    })
}

/// The lane buffer of worker index `worker`. Worker lanes are keyed by
/// *index*, not OS thread: `leo-parallel` spawns fresh scoped threads
/// per fan-out, and per-thread lanes would explode into thousands of
/// single-chunk rows.
fn worker_buf(worker: usize) -> Buf {
    let generation = GENERATION.load(Ordering::Relaxed);
    let mut map = WORKERS.lock();
    if map.0 != generation {
        map.0 = generation;
        map.1.clear();
    }
    if map.1.len() <= worker {
        map.1.resize(worker + 1, None);
    }
    if let Some(buf) = &map.1[worker] {
        return Arc::clone(buf);
    }
    let buf = register_lane(Some(format!("worker-{worker}")));
    map.1[worker] = Some(Arc::clone(&buf));
    buf
}

/// Records a span opening at `at` on this thread's lane.
pub fn begin(name: &str, at: Instant) {
    if !enabled() {
        return;
    }
    let ts = ts_ns(at);
    current_buf().lock().push(Event {
        ts_ns: ts,
        name: name.to_string(),
        kind: EventKind::Begin,
        args: Vec::new(),
        parent: None,
    });
}

/// Records a span closing at `at` on this thread's lane.
pub fn end(name: &str, at: Instant) {
    if !enabled() {
        return;
    }
    let ts = ts_ns(at);
    current_buf().lock().push(Event {
        ts_ns: ts,
        name: name.to_string(),
        kind: EventKind::End,
        args: Vec::new(),
        parent: None,
    });
}

/// The `mem` lane buffer, registered on first use per generation.
fn mem_buf() -> Buf {
    let generation = GENERATION.load(Ordering::Relaxed);
    let mut slot = MEM_LANE.lock();
    if slot.0 != generation {
        slot.0 = generation;
        slot.1 = None;
    }
    if let Some(buf) = &slot.1 {
        return Arc::clone(buf);
    }
    let buf = register_lane(Some("mem".to_string()));
    slot.1 = Some(Arc::clone(&buf));
    buf
}

/// Records a counter sample — one or more `(series, value)` pairs
/// under `name` — on the shared `mem` lane, timestamped `at`.
pub fn counter_at(name: &str, series: &[(&'static str, u64)], at: Instant) {
    if !enabled() {
        return;
    }
    let ts = ts_ns(at);
    mem_buf().lock().push(Event {
        ts_ns: ts,
        name: name.to_string(),
        kind: EventKind::Counter,
        args: series.to_vec(),
        parent: None,
    });
}

/// Records a counter sample timestamped now. See [`counter_at`].
pub fn counter(name: &str, series: &[(&'static str, u64)]) {
    counter_at(name, series, Instant::now());
}

/// Records a point-in-time marker (cache hit/miss/invalid, ...) on
/// this thread's lane, timestamped now.
pub fn instant(name: &str) {
    if !enabled() {
        return;
    }
    let ts = ts_ns(Instant::now());
    current_buf().lock().push(Event {
        ts_ns: ts,
        name: name.to_string(),
        kind: EventKind::Instant,
        args: Vec::new(),
        parent: None,
    });
}

/// Records one completed worker chunk — `[lo, hi)` of a fan-out, busy
/// from `start` to `end` — on the `worker-<index>` lane. `parent` is
/// the dispatching caller's span path (`stage.fig2/fig2.sweep`):
/// exports nest the chunk under those frames, so flamegraphs
/// telescope through fan-outs instead of orphaning worker time.
pub fn worker_chunk(
    worker: usize,
    name: &str,
    parent: Option<&str>,
    start: Instant,
    end: Instant,
    lo: usize,
    hi: usize,
) {
    if !enabled() {
        return;
    }
    let ts = ts_ns(start);
    let dur_ns = end
        .checked_duration_since(start)
        .map_or(0, |d| d.as_nanos() as u64);
    worker_buf(worker).lock().push(Event {
        ts_ns: ts,
        name: name.to_string(),
        kind: EventKind::Complete { dur_ns },
        args: vec![
            ("chunk", worker as u64),
            ("lo", lo as u64),
            ("hi", hi as u64),
        ],
        parent: parent.map(str::to_string),
    });
}

/// Number of lanes currently registered (zero while tracing is off —
/// the disabled-path tests pin this).
pub fn lane_count() -> usize {
    LANES.lock().len()
}

/// Total events across every lane.
pub fn event_count() -> usize {
    LANES.lock().iter().map(|l| l.buf.lock().len()).sum()
}

/// A copy of every lane and its events, in lane-registration order.
/// Each lane's events are sorted by timestamp (stably, so the
/// recording order of same-instant events — a span's Begin before a
/// nested Begin — survives): a lane keyed by worker *index* can be fed
/// from different OS threads across fan-outs, whose push order is lock
/// order, not time order.
pub fn snapshot() -> Vec<LaneSnapshot> {
    LANES
        .lock()
        .iter()
        .map(|l| {
            let mut events = l.buf.lock().clone();
            events.sort_by_key(|e| e.ts_ns);
            LaneSnapshot {
                label: l.label.clone(),
                events,
            }
        })
        .collect()
}

/// Drops every lane and re-bases the trace epoch. The CLI calls this
/// at startup so an export only covers its own invocation; call it
/// outside any open span (an `End` without its `Begin` would land on a
/// fresh lane).
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    LANES.lock().clear();
    let mut map = WORKERS.lock();
    map.0 = GENERATION.load(Ordering::Relaxed);
    map.1.clear();
    drop(map);
    let mut mem = MEM_LANE.lock();
    mem.0 = GENERATION.load(Ordering::Relaxed);
    mem.1 = None;
    drop(mem);
    *EPOCH.lock() = Some(Instant::now());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One lock for every test that flips the process-wide flags.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_allocates_nothing() {
        let _lock = test_lock();
        leo_obs::set_enabled(true);
        set_enabled(false);
        reset();
        begin("t.span", Instant::now());
        end("t.span", Instant::now());
        instant("t.marker");
        worker_chunk(0, "t.chunk", None, Instant::now(), Instant::now(), 0, 8);
        assert_eq!(lane_count(), 0);
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn events_record_in_order_with_monotonic_timestamps() {
        let _lock = test_lock();
        leo_obs::set_enabled(true);
        set_enabled(true);
        reset();
        let t0 = Instant::now();
        begin("t.outer", t0);
        instant("t.mark");
        let t1 = Instant::now();
        end("t.outer", t1);
        worker_chunk(2, "t.chunk", Some("stage.t/outer"), t0, t1, 10, 20);
        let lanes = snapshot();
        assert_eq!(lanes.len(), 2, "{lanes:?}");
        let own = &lanes[0];
        assert_eq!(own.events.len(), 3);
        assert_eq!(own.events[0].kind, EventKind::Begin);
        assert_eq!(own.events[1].kind, EventKind::Instant);
        assert_eq!(own.events[2].kind, EventKind::End);
        assert!(own.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let worker = &lanes[1];
        assert_eq!(worker.label, "worker-2");
        assert!(matches!(worker.events[0].kind, EventKind::Complete { .. }));
        assert_eq!(
            worker.events[0].args,
            vec![("chunk", 2), ("lo", 10), ("hi", 20)]
        );
        set_enabled(false);
        reset();
    }

    #[test]
    fn obs_off_silences_tracing_even_when_requested() {
        let _lock = test_lock();
        set_enabled(true);
        leo_obs::set_enabled(false);
        reset();
        begin("t.span", Instant::now());
        instant("t.marker");
        assert_eq!(lane_count(), 0);
        assert_eq!(event_count(), 0);
        leo_obs::set_enabled(true);
        set_enabled(false);
    }

    #[test]
    fn spans_feed_the_timeline_through_the_sink() {
        let _lock = test_lock();
        leo_obs::set_enabled(true);
        set_enabled(true);
        reset();
        {
            let _span = leo_obs::span::enter("t_sink.outer");
            let _inner = leo_obs::span::enter("inner");
        }
        let lanes = snapshot();
        let events: Vec<&Event> = lanes.iter().flat_map(|l| &l.events).collect();
        let names: Vec<(&str, &EventKind)> =
            events.iter().map(|e| (e.name.as_str(), &e.kind)).collect();
        assert_eq!(
            names,
            vec![
                ("t_sink.outer", &EventKind::Begin),
                ("inner", &EventKind::Begin),
                ("inner", &EventKind::End),
                ("t_sink.outer", &EventKind::End),
            ]
        );
        set_enabled(false);
        reset();
    }

    fn fake_read() -> leo_obs::resource::AllocReading {
        leo_obs::resource::AllocReading {
            alloc_calls: 1,
            dealloc_calls: 0,
            allocated_bytes: 2048,
            current_bytes: 2048,
            peak_bytes: 2048,
        }
    }
    fn fake_rebase() -> u64 {
        2048
    }
    fn fake_span_peak() -> u64 {
        2048
    }

    #[test]
    fn span_boundaries_sample_memory_onto_the_mem_lane() {
        let _lock = test_lock();
        leo_obs::set_enabled(true);
        set_enabled(true);
        reset();
        // Without a hook: spans alone, no mem lane.
        {
            let _span = leo_obs::span::enter("t_mem.unhooked");
        }
        assert!(!snapshot().iter().any(|l| l.label == "mem"));
        leo_obs::resource::set_alloc_hook(Some(leo_obs::resource::AllocHook {
            read: fake_read,
            rebase_span_peak: fake_rebase,
            span_peak: fake_span_peak,
        }));
        {
            let _span = leo_obs::span::enter("t_mem.hooked");
        }
        leo_obs::resource::set_alloc_hook(None);
        let lanes = snapshot();
        let mem = lanes
            .iter()
            .find(|l| l.label == "mem")
            .expect("mem lane registered");
        let heap: Vec<&Event> = mem
            .events
            .iter()
            .filter(|e| e.name == "heap_bytes")
            .collect();
        // One sample per span boundary: Begin and End.
        assert_eq!(heap.len(), 2, "{heap:?}");
        assert!(heap
            .iter()
            .all(|e| e.kind == EventKind::Counter && e.args == vec![("bytes", 2048)]));
        set_enabled(false);
        reset();
    }

    #[test]
    fn reset_clears_lanes_and_rebases_worker_map() {
        let _lock = test_lock();
        leo_obs::set_enabled(true);
        set_enabled(true);
        reset();
        worker_chunk(0, "t.chunk", None, Instant::now(), Instant::now(), 0, 4);
        instant("t.marker");
        assert!(lane_count() >= 2);
        reset();
        assert_eq!(lane_count(), 0);
        assert_eq!(event_count(), 0);
        // Re-recording after reset registers fresh lanes.
        worker_chunk(0, "t.chunk", None, Instant::now(), Instant::now(), 0, 4);
        assert_eq!(lane_count(), 1);
        set_enabled(false);
        reset();
    }
}
