//! BEAD buildout vs. constellation size: a policy what-if.
//!
//! The paper's motivation cites the NTIA's restructuring of the $42.45 B
//! BEAD program to allow funding LEO service instead of terrestrial
//! builds. This example runs the complementary counterfactual: as a
//! terrestrial buildout serves more of each cell's backlog, how do the
//! constellation Starlink would need *and* the affordability gap evolve?
//!
//! ```sh
//! cargo run --release --example bead_buildout
//! ```

use starlink_divide_repro::capacity::beamspread::Beamspread;
use starlink_divide_repro::capacity::DeploymentPolicy;
use starlink_divide_repro::demand::scenario::terrestrial_buildout;
use starlink_divide_repro::demand::IspPlan;
use starlink_divide_repro::model::{afford, sizing, PaperModel};
use starlink_divide_repro::report::TextTable;

fn main() {
    let base = PaperModel::test_scale();
    let spread = Beamspread::new(2).expect("nonzero");
    let mut t = TextTable::new(
        "terrestrial buildout (locations served per cell) vs LEO requirements",
        &[
            "buildout/cell",
            "backlog",
            "demand cells",
            "satellites (b=2, 20:1)",
            "cannot afford $120",
        ],
    );
    for per_cell in [0u64, 50, 200, 500, 1000, 2000, 3465] {
        let ds = terrestrial_buildout(&base.dataset, per_cell);
        if ds.cells.is_empty() {
            t.row(&[
                per_cell.to_string(),
                "0".into(),
                "0".into(),
                "none needed".into(),
                "0".into(),
            ]);
            continue;
        }
        let model = PaperModel::new(ds);
        let sats = sizing::constellation_size(&model, DeploymentPolicy::fcc_capped(), spread);
        let unafford = afford::affordability(&model, IspPlan::starlink_residential());
        t.row(&[
            per_cell.to_string(),
            model.dataset.total_locations.to_string(),
            model.dataset.cells.len().to_string(),
            sats.to_string(),
            format!(
                "{} ({:.1}%)",
                unafford.unaffordable_locations,
                100.0 * unafford.unaffordable_fraction()
            ),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nThe stone-in-the-jar picture, quantified: terrestrial builds shrink the backlog\n\
         but the *constellation requirement* barely moves until the buildout reaches the\n\
         densest cells (the peak cell pins it), and the affordability gap persists at\n\
         every buildout level — capacity and affordability are separate barriers."
    );
}
