//! Busy-hour quality of experience under oversubscription.
//!
//! Simulates one Starlink cell's downlink as a processor-sharing queue
//! across a full day and prints what subscribers experience hour by
//! hour at the paper's two pivotal ratios: the FCC's 20:1 benchmark
//! and the 35:1 the peak cell would need.
//!
//! ```sh
//! cargo run --release --example busy_hour_qoe
//! ```

use starlink_divide_repro::report::TextTable;
use starlink_divide_repro::simnet::qoe::summarize;
use starlink_divide_repro::simnet::{CellSim, SimConfig};

fn main() {
    // One beam-group's share of a cell: 1 Gbps keeps the example quick
    // while preserving the load ratios that matter.
    let capacity_gbps = 1.0;
    for oversub in [20.0, 35.0] {
        let mut cfg = SimConfig::oversubscribed_cell(capacity_gbps, oversub, 7);
        cfg.start_hour = 0.0;
        cfg.duration_h = 24.0;
        let records = CellSim::new(cfg.clone()).run();
        println!(
            "oversubscription {oversub}:1 — {} subscribers, {} flows completed over 24h",
            cfg.subscribers,
            records.len()
        );
        let mut t = TextTable::new(
            format!("hourly service quality at {oversub}:1"),
            &["hour", "flows", "median Mbps", "full-speed %"],
        );
        for hour in 0..24 {
            let slice: Vec<_> = records
                .iter()
                .filter(|r| r.arrival_h as u32 % 24 == hour)
                .cloned()
                .collect();
            if slice.is_empty() {
                continue;
            }
            let q = summarize(oversub, &cfg, &slice);
            t.row(&[
                format!("{hour:02}:00"),
                q.flows.to_string(),
                format!("{:.1}", q.median_mbps),
                format!("{:.1}%", 100.0 * q.full_speed_fraction),
            ]);
        }
        print!("{}", t.render());
        let busy: Vec<_> = records
            .iter()
            .filter(|r| (20.0..21.0).contains(&r.arrival_h))
            .cloned()
            .collect();
        let q = summarize(oversub, &cfg, &busy);
        println!(
            "busy hour (20:00): median {:.1} Mbps, {:.1}% of flows at full speed\n",
            q.median_mbps,
            100.0 * q.full_speed_fraction
        );
    }
    println!(
        "The paper's F1: a 35:1 ratio 'would likely result in many users ... not \
         receiving 100/20 service' — the busy-hour rows above quantify it."
    );
}
