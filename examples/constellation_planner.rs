//! Constellation planner: a downstream-user scenario.
//!
//! You are a constellation operator with a launch budget. Given a
//! maximum fleet size, what is the best (beamspread, oversubscription)
//! operating point, what fraction of US un(der)served cells does it
//! serve, and how many locations are left behind?
//!
//! ```sh
//! cargo run --release --example constellation_planner -- 8000
//! ```

use starlink_divide_repro::capacity::beamspread::Beamspread;
use starlink_divide_repro::capacity::oversub::{max_locations_servable, Oversubscription};
use starlink_divide_repro::model::{coverage_sweep, sizing, PaperModel};
use starlink_divide_repro::report::TextTable;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8_000);
    println!("planning for a fleet budget of {budget} satellites\n");
    let model = PaperModel::test_scale();
    let counts = model.dataset.sorted_counts();
    let total: u64 = counts.iter().sum();

    let mut table = TextTable::new(
        format!("operating points within a {budget}-satellite budget"),
        &[
            "beamspread",
            "oversub",
            "satellites",
            "cells served",
            "locations served",
        ],
    );
    let mut best: Option<(f64, u32, u32)> = None;
    for b in 1..=15u32 {
        let spread = Beamspread::new(b).unwrap();
        for rho in (5..=35).step_by(5) {
            let oversub = Oversubscription::new(rho as f64).unwrap();
            // Satellites needed to serve everything servable at this point.
            let policy = starlink_divide_repro::capacity::DeploymentPolicy::OversubCap(oversub);
            let n = sizing::constellation_size(&model, policy, spread);
            if n > budget {
                continue;
            }
            let frac = coverage_sweep::fraction_served(&model, &counts, oversub, spread);
            // Locations served: every cell within the spread capacity,
            // plus partial service up to the limit elsewhere.
            let cell_limit = max_locations_servable(
                starlink_divide_repro::capacity::beamspread::spread_cell_capacity_gbps(
                    &model.capacity,
                    spread,
                ),
                oversub,
            );
            let served: u64 = counts.iter().map(|&c| c.min(cell_limit)).sum();
            table.row(&[
                b.to_string(),
                format!("{rho}:1"),
                n.to_string(),
                format!("{:.1}%", 100.0 * frac),
                format!("{:.1}%", 100.0 * served as f64 / total as f64),
            ]);
            if best.map(|(f, _, _)| frac > f).unwrap_or(true) {
                best = Some((frac, b, rho));
            }
        }
    }
    print!("{}", table.render());
    match best {
        Some((frac, b, rho)) => println!(
            "\nbest within budget: beamspread {b}, oversubscription {rho}:1 -> {:.1}% of cells",
            100.0 * frac
        ),
        None => println!(
            "\nno operating point fits {budget} satellites — even the highest beamspread \
             needs more (see Table 2); the budget only buys partial coverage"
        ),
    }
}
