//! Satellite pass planner for a user terminal.
//!
//! A ground-truth view of "anyone, anywhere": pick a point, predict
//! when individual satellites of the workhorse shell rise and set for
//! it, and report the Doppler the modem must track. Complements the
//! statistical coverage model with the per-pass mechanics.
//!
//! ```sh
//! cargo run --release --example pass_planner -- 47.0 -109.0
//! ```

use starlink_divide_repro::geomath::LatLng;
use starlink_divide_repro::orbit::doppler::max_doppler_hz;
use starlink_divide_repro::orbit::passes::predict_passes;
use starlink_divide_repro::orbit::{CircularOrbit, WalkerShell};
use starlink_divide_repro::report::TextTable;

fn main() {
    let mut args = std::env::args().skip(1);
    let lat: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(47.0);
    let lng: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(-109.0);
    let ground = LatLng::new(lat, lng);
    println!("pass planning for {ground} (elevation mask 25 deg)\n");

    // One representative satellite per plane of the Gen1 shell keeps
    // the table readable; the full shell has a satellite overhead
    // continuously (see `divide orbit-validate`).
    let shell = WalkerShell::starlink_gen1_shell1();
    let mut t = TextTable::new(
        "next-6-hour passes of plane-leader satellites",
        &[
            "plane",
            "AOS (min)",
            "LOS (min)",
            "duration s",
            "max elev",
            "max Doppler @12 GHz",
        ],
    );
    let mut total_passes = 0;
    for plane in (0..shell.planes).step_by(12) {
        let raan = 360.0 * plane as f64 / shell.planes as f64;
        let orbit = CircularOrbit::new(shell.altitude_km, shell.inclination_deg, raan, 0.0);
        for p in predict_passes(&orbit, &ground, 25.0, 6.0 * 3600.0, 15.0) {
            total_passes += 1;
            t.row(&[
                plane.to_string(),
                format!("{:.1}", p.aos_s / 60.0),
                format!("{:.1}", p.los_s / 60.0),
                format!("{:.0}", p.duration_s()),
                format!("{:.0} deg", p.max_elevation_deg),
                format!(
                    "{:.0} kHz",
                    max_doppler_hz(&orbit, &ground, 12.0, 400) / 1e3
                ),
            ]);
        }
    }
    print!("{}", t.render());
    if total_passes == 0 {
        println!(
            "no passes: the point lies outside the 53-degree shell's coverage band \
             (|lat| must be below ~61.5 deg)"
        );
    } else {
        println!(
            "\n{total_passes} passes from just {} of {} planes — with all planes and \
             22 satellites each, coverage is continuous (the paper's premise P1).",
            shell.planes.div_ceil(12),
            shell.planes
        );
    }
}
