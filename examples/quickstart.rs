//! Quickstart: build the calibrated dataset and reproduce the paper's
//! four findings end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Uses the reduced test-scale dataset so it finishes in seconds; pass
//! `--paper` for the full ~4.67 M-location dataset.

use starlink_divide_repro::capacity::beamspread::Beamspread;
use starlink_divide_repro::capacity::DeploymentPolicy;
use starlink_divide_repro::model::{findings, sizing, PaperModel};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    println!(
        "building {} dataset...",
        if paper_scale {
            "paper-scale"
        } else {
            "test-scale"
        }
    );
    let model = if paper_scale {
        PaperModel::paper_scale()
    } else {
        PaperModel::test_scale()
    };
    println!(
        "dataset: {} un(der)served locations across {} demand cells ({} US cells)\n",
        model.dataset.total_locations,
        model.dataset.cells.len(),
        model.dataset.us_cell_count,
    );

    let f1 = findings::finding1(&model);
    println!("== F1: spectrum limits ==");
    println!(
        "peak cell: {} locations -> {:.1} Gbps demand -> {:.1}:1 oversubscription needed",
        f1.peak_locations, f1.peak_demand_gbps, f1.peak_oversub
    );
    println!(
        "at the FCC 20:1 benchmark, {} locations in {} cells are shed ({:.2}% still served)\n",
        f1.unserved_at_cap,
        f1.over_cap_cells,
        100.0 * f1.served_fraction_at_cap
    );

    let f2 = findings::finding2(&model);
    println!("== F2: constellation scale ==");
    for b in [1u32, 2, 5, 10, 15] {
        let n = sizing::constellation_size(
            &model,
            DeploymentPolicy::fcc_capped(),
            Beamspread::new(b).unwrap(),
        );
        println!("  beamspread {b:>2} -> {n:>6} satellites (20:1 cap)");
    }
    println!(
        "covering every US cell within 20:1 at beamspread 2 needs {} satellites — {} more than today's ~{}\n",
        f2.required_b2_capped, f2.additional_needed, f2.current_size
    );

    let f3 = findings::finding3(&model);
    println!("== F3: diminishing returns ==");
    println!(
        "the final {} locations alone cost {} additional satellites (b=5, 20:1)\n",
        f3.tail_locations, f3.marginal_satellites
    );

    let f4 = findings::finding4(&model);
    println!("== F4: affordability ==");
    println!(
        "{} of {} locations ({:.1}%) cannot afford Starlink Residential at $120/mo;",
        f4.unaffordable_residential,
        f4.total_locations,
        100.0 * f4.unaffordable_residential as f64 / f4.total_locations as f64
    );
    println!(
        "{} still cannot with the Lifeline subsidy; cable-priced plans are affordable at {:.2}% of locations.",
        f4.unaffordable_with_lifeline,
        100.0 * f4.cable_affordable_fraction
    );
}
