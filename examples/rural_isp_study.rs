//! Rural affordability study: a policy-analyst scenario.
//!
//! For the most remote decile of counties (by distance to the nearest
//! metro), compare what each Figure 4 plan costs as a share of median
//! income, and compute the per-household monthly subsidy that would be
//! needed to bring Starlink Residential under the 2 % affordability
//! threshold everywhere.
//!
//! ```sh
//! cargo run --release --example rural_isp_study
//! ```

use starlink_divide_repro::demand::{IspPlan, AFFORDABILITY_THRESHOLD};
use starlink_divide_repro::model::PaperModel;
use starlink_divide_repro::report::TextTable;

fn main() {
    let model = PaperModel::test_scale();
    let mut counties: Vec<_> = model
        .dataset
        .counties
        .iter()
        .filter(|c| c.locations > 0)
        .collect();
    counties.sort_by(|a, b| {
        b.remoteness_km
            .partial_cmp(&a.remoteness_km)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let decile = counties.len() / 10;
    let cohort = &counties[..decile.max(1)];
    let cohort_locations: u64 = cohort.iter().map(|c| c.locations).sum();
    println!(
        "most remote decile: {} counties, {} un(der)served locations,",
        cohort.len(),
        cohort_locations
    );
    let mean_income: f64 =
        cohort.iter().map(|c| c.median_income_usd).sum::<f64>() / cohort.len() as f64;
    println!("mean county median income ${mean_income:.0}/yr\n");

    let mut t = TextTable::new(
        "plan cost as share of monthly income (most remote decile)",
        &["plan", "$/month", "mean share", "locations priced out"],
    );
    for plan in IspPlan::figure4_catalog() {
        let mut priced_out = 0u64;
        let mut share_sum = 0.0;
        for c in cohort {
            let share = plan.income_proportion(c.median_income_usd);
            share_sum += share * c.locations as f64;
            if share > AFFORDABILITY_THRESHOLD {
                priced_out += c.locations;
            }
        }
        t.row(&[
            plan.name.to_string(),
            format!("{:.2}", plan.monthly_usd),
            format!("{:.2}%", 100.0 * share_sum / cohort_locations as f64),
            format!(
                "{priced_out} ({:.1}%)",
                100.0 * priced_out as f64 / cohort_locations as f64
            ),
        ]);
    }
    print!("{}", t.render());

    // Subsidy sizing: bring Starlink Residential within 2% everywhere
    // in the cohort.
    let residential = IspPlan::starlink_residential();
    let worst_income = cohort
        .iter()
        .map(|c| c.median_income_usd)
        .fold(f64::INFINITY, f64::min);
    let affordable_price = AFFORDABILITY_THRESHOLD * worst_income / 12.0;
    let subsidy = (residential.monthly_usd - affordable_price).max(0.0);
    let annual_cost = subsidy * 12.0 * cohort_locations as f64;
    println!(
        "\nto make ${:.0}/mo service affordable at the poorest cohort county \
         (median ${worst_income:.0}/yr), a subsidy of ${subsidy:.2}/mo per household is needed",
        residential.monthly_usd
    );
    println!(
        "cohort-wide cost: ${:.1}M per year (vs the $9.25/mo Lifeline benefit)",
        annual_cost / 1e6
    );
}
