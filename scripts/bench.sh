#!/usr/bin/env bash
# Bench harness: paper-scale cold and warm cached runs of the full
# pipeline (`divide --scale paper all`) at 1 and 4 worker threads,
# each captured via --metrics-out and merged into BENCH_tier1.json at
# the repo root. The warm runs must be pure cache hits; the JSON
# records both wall-clocks so the snapshot cache's win is a tracked
# number, not an anecdote. Extra warm runs (best of 3, --trace vs
# plain, at both thread counts) record the timeline recorder's
# overhead, a DIVIDE_ALLOC=off leg records the tracking allocator's
# overhead — gated below 2% (BENCH_ALLOC_GATE_PCT), the budget
# DESIGN.md §12 promises — an inert-fault-plan leg records the
# fault-injection sites' overhead, gated below 1%
# (BENCH_FAULT_GATE_PCT, DESIGN.md §13), and a DIVIDE_OBS on/off leg
# records the scoped-observability machinery's overhead (span stack,
# sharded counters, scope propagation through the pool), gated below
# 2% (BENCH_OBS_GATE_PCT, DESIGN.md §15). The JSON also carries a
# `host` section (cpu_cores, kernel) so numbers from different boxes
# are never compared blind.
#
# The JSON also records `thread_scaling` — the threads_4/threads_1
# wall-clock ratios (cold and warm). On hosts with >= 4 cores a ratio
# >= 1.0 means adding workers made the run *slower* (the negative
# scaling bug ROADMAP item 1 tracked) and the script fails; set
# BENCH_SCALING_SKIP=1 to bypass on a loaded or shared box. Below 4
# cores the check is skipped: the ratio is recorded but meaningless.
#
# The JSON further records `decode_throughput_mbps` (warm snapshot
# payload bytes over the warm dataset stage's wall-clock) and a
# `kernels` section of per-kernel medians parsed from the criterion
# harness's KERNELS_JSON line (Fig 2 row scan, unserved fold,
# stratified sampling, bulk centers, snapshot encode/decode). Under
# --gate, a decode throughput more than $BENCH_GATE_PCT percent below
# the committed BENCH_tier1.json fails (BENCH_DECODE_SKIP=1 bypasses).
#
# The canonical warm runs append to a persistent run ledger
# (BENCH_LEDGER, default .bench-runs.jsonl at the repo root,
# gitignored) so successive bench invocations build a history.
#
# Usage:
#   scripts/bench.sh          regenerate BENCH_tier1.json
#   scripts/bench.sh --gate   regenerate, then `divide history` the
#                             ledger: exits 3 when the newest warm run
#                             regressed the wall-clock or peak heap of
#                             any stage by more than $BENCH_GATE_PCT
#                             percent (20) over the prior median.
set -euo pipefail

cd "$(dirname "$0")/.."

gate=0
if [ "${1:-}" = "--gate" ]; then
    gate=1
    shift
fi
[ $# -eq 0 ] || { echo "usage: scripts/bench.sh [--gate]" >&2; exit 2; }

echo "[bench] cargo build --release -p divide-cli"
cargo build --release -p divide-cli

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Measurement runs must not pollute the trend ledger; only the
# canonical warm runs below opt back in.
ledger="${BENCH_LEDGER:-.bench-runs.jsonl}"
export DIVIDE_LEDGER=off

for threads in 1 4; do
    cachedir="$work/cache-$threads"
    for phase in cold warm; do
        out="$work/$phase-$threads"
        echo "[bench] divide --scale paper all --threads $threads ($phase)"
        if [ "$phase" = warm ]; then
            run_ledger="$ledger"
        else
            run_ledger=off
        fi
        DIVIDE_LEDGER="$run_ledger" ./target/release/divide --scale paper all \
            --out "$out" --cache "$cachedir" --threads "$threads" -q \
            --metrics-out "$work/$phase-$threads.json" >/dev/null
    done
    # Warm must be byte-identical to cold — a bench that changed the
    # artifacts would be measuring a different program.
    diff -r --exclude run_manifest.json "$work/cold-$threads" "$work/warm-$threads" \
        || { echo "[bench] warm artifacts differ at $threads threads" >&2; exit 1; }

    # Tracing overhead at this thread count: the same warm run with
    # the recorder on vs off, best of 3 each — single samples are all
    # scheduler noise on a loaded box.
    echo "[bench] divide --scale paper all --threads $threads (warm, --trace vs plain, 3x each)"
    for rep in 1 2 3; do
        ./target/release/divide --scale paper all \
            --out "$work/plain-rep-$threads" --cache "$cachedir" --threads "$threads" -q \
            --metrics-out "$work/plain-rep-$threads-$rep.json" >/dev/null
        ./target/release/divide --scale paper all \
            --out "$work/traced-rep-$threads" --cache "$cachedir" --threads "$threads" -q \
            --trace --metrics-out "$work/traced-rep-$threads-$rep.json" >/dev/null
    done
    diff -r --exclude run_manifest.json --exclude trace.json --exclude trace.folded \
        "$work/warm-$threads" "$work/traced-rep-$threads" \
        || { echo "[bench] --trace changed artifact bytes at $threads threads" >&2; exit 1; }
done

# Allocator overhead: warm single-threaded runs with tracking on vs
# DIVIDE_ALLOC=off, as adjacent pairs with the order *alternating*
# each pair (a box that throttles every other run would otherwise
# charge the whole penalty to whichever leg always ran first). Two
# deliberate choices tame the noise a gate this tight (2%) needs:
#
#   * The legs run at --threads 1. On an oversubscribed box the pool
#     adds condvar-wake and context-switch churn whose CPU cost is
#     scheduler luck — measured >10% CPU-time swing run to run at 4
#     threads, swamping a sub-percent signal. Allocator overhead per
#     op is thread-count-independent, so the single-threaded
#     measurement is the same answer with far less variance.
#   * The score is min-vs-min over each leg's CPU time (cpu_ms,
#     nanosecond schedstat; wall_ms fallback off-Linux): allocator
#     bookkeeping is pure CPU, CPU time shrugs off the preemption that
#     makes wall-clock flap, and interference is one-sided — it only
#     ever adds time — so the minimum over the reps estimates each
#     leg's noise-free floor and the floors' difference is the
#     tracking cost.
echo "[bench] divide --scale paper all --threads 1 (warm, DIVIDE_ALLOC on/off, 10 pairs)"
alloc_leg() { # $1 = on|off, $2 = rep index
    DIVIDE_ALLOC="$1" ./target/release/divide --scale paper all \
        --out "$work/alloc-$1-rep" --cache "$work/cache-1" --threads 1 -q \
        --metrics-out "$work/alloc-$1-rep$2.json" >/dev/null
}
for rep in 1 2 3 4 5 6 7 8 9 10; do
    if [ $((rep % 2)) -eq 1 ]; then
        alloc_leg on "$rep"; alloc_leg off "$rep"
    else
        alloc_leg off "$rep"; alloc_leg on "$rep"
    fi
done
diff -r --exclude run_manifest.json "$work/warm-1" "$work/alloc-off-rep" \
    || { echo "[bench] DIVIDE_ALLOC=off changed artifact bytes" >&2; exit 1; }

# Fault-injection overhead: every choke point (io.*, cache.decode,
# ledger.append, pool.chunk, stage.*) probes the fault engine on every
# call; with no plan active that probe is a single relaxed atomic load,
# and with an *inert* plan active (p=0, so nothing ever fires) it adds
# one hash-and-compare per call. The budget is < 1% (DESIGN.md §13).
# Same estimator as the allocator leg above: order-alternating
# single-threaded warm pairs, min-vs-min CPU time.
echo "[bench] divide --scale paper all --threads 1 (warm, inert fault plan on/off, 10 pairs)"
fault_leg() { # $1 = on|off, $2 = rep index
    local plan=""
    [ "$1" = on ] && plan="seed=1;io.write:p=0,mode=err"
    DIVIDE_FAULT="$plan" ./target/release/divide --scale paper all \
        --out "$work/fault-$1-rep" --cache "$work/cache-1" --threads 1 -q \
        --metrics-out "$work/fault-$1-rep$2.json" >/dev/null
}
for rep in 1 2 3 4 5 6 7 8 9 10; do
    if [ $((rep % 2)) -eq 1 ]; then
        fault_leg on "$rep"; fault_leg off "$rep"
    else
        fault_leg off "$rep"; fault_leg on "$rep"
    fi
done
diff -r --exclude run_manifest.json "$work/warm-1" "$work/fault-on-rep" \
    || { echo "[bench] inert fault plan changed artifact bytes" >&2; exit 1; }

# Scoped-observability overhead: DIVIDE_OBS on vs off, with the
# tracking allocator disabled on BOTH legs so the measurement isolates
# the scope machinery (span stack + registry locks, sharded counters,
# ObsContext propagation through the pool) from the separately-gated
# allocator cost. Same order-alternating single-threaded warm pairs,
# but a *paired* estimator — median of per-pair CPU-time deltas —
# instead of min-vs-min: this host's CPU-time floor is bimodal
# (co-tenancy phases), and min-vs-min flaps by several percent when
# only one leg's 10 samples happen to land in the fast phase. The two
# runs of a pair execute back-to-back inside one phase, so their delta
# cancels it; the median discards the pairs a phase transition splits
# (DESIGN.md §15's < 2% budget).
echo "[bench] divide --scale paper all --threads 1 (warm, DIVIDE_OBS on/off, 10 pairs)"
obs_leg() { # $1 = on|off, $2 = rep index
    DIVIDE_ALLOC=off DIVIDE_OBS="$1" ./target/release/divide --scale paper all \
        --out "$work/obs-$1-rep" --cache "$work/cache-1" --threads 1 -q \
        --metrics-out "$work/obs-$1-rep$2.json" >/dev/null
}
for rep in 1 2 3 4 5 6 7 8 9 10; do
    if [ $((rep % 2)) -eq 1 ]; then
        obs_leg on "$rep"; obs_leg off "$rep"
    else
        obs_leg off "$rep"; obs_leg on "$rep"
    fi
done
diff -r --exclude run_manifest.json "$work/warm-1" "$work/obs-off-rep" \
    || { echo "[bench] DIVIDE_OBS=off changed artifact bytes" >&2; exit 1; }

# Per-kernel medians: bench_kernels ends with a machine-readable
# KERNELS_JSON line (and asserts each rewritten kernel is bit-identical
# to its scalar baseline — a gate in itself).
echo "[bench] cargo bench -p leo-bench --bench bench_kernels"
cargo bench -p leo-bench --bench bench_kernels > "$work/kernels.out" 2>&1 \
    || { cat "$work/kernels.out" >&2; exit 1; }
sed -n 's/^KERNELS_JSON: //p' "$work/kernels.out" > "$work/kernels.json"
[ -s "$work/kernels.json" ] \
    || { echo "[bench] bench_kernels printed no KERNELS_JSON line" >&2; exit 1; }

python3 - "$work" BENCH_tier1.json <<'PY'
import json, os, platform, sys

work, out_path = sys.argv[1], sys.argv[2]
result = {
    "schema": "divide/bench-tier1/v1",
    "scale": "paper",
    "command": "all",
    "host": {"cpu_cores": os.cpu_count() or 1, "kernel": platform.release()},
    "runs": {},
}
best = lambda pattern: min(
    json.load(open(f"{work}/{pattern.format(r)}"))["wall_ms"] for r in (1, 2, 3))
for threads in (1, 4):
    cold = json.load(open(f"{work}/cold-{threads}.json"))
    warm = json.load(open(f"{work}/warm-{threads}.json"))
    wc = warm["counters"]
    assert wc.get("cache.hit", 0) >= 1, f"warm run at {threads} threads missed the cache: {wc}"
    # The resource telemetry must have measured the run (DESIGN.md §12).
    assert warm.get("alloc_bytes_total", 0) > 0, warm.keys()
    assert warm.get("peak_rss_kb", 0) > 0, warm.keys()
    plain = best(f"plain-rep-{threads}-{{}}.json")
    traced = best(f"traced-rep-{threads}-{{}}.json")
    result["runs"][f"threads_{threads}"] = {
        "cold_wall_ms": cold["wall_ms"],
        "warm_wall_ms": warm["wall_ms"],
        "cold_dataset_stage_ms": cold["stages"].get("dataset"),
        "warm_dataset_stage_ms": warm["stages"].get("dataset"),
        "warm_speedup": cold["wall_ms"] / warm["wall_ms"],
        "cache_bytes_written": cold["counters"].get("cache.bytes_written", 0),
        "cache_bytes_read": wc.get("cache.bytes_read", 0),
        # Informational (not a *_ms key pair a report gate compares):
        # tracing's cost relative to the identical untraced warm run.
        "trace_overhead_pct": round(100.0 * (traced - plain) / plain, 2),
        "alloc_bytes_total": warm["alloc_bytes_total"],
        "peak_heap_bytes": warm.get("peak_heap_bytes", 0),
        "peak_rss_kb": warm["peak_rss_kb"],
    }
# Allocator overhead: min-vs-min CPU time over the order-alternating
# single-threaded on/off reps (see the bench loop for why CPU time,
# one thread, and minima — not wall-clock means or medians).
cost = lambda rec: rec.get("cpu_ms") or rec["wall_ms"]
reps = range(1, 11)
on = min(cost(json.load(open(f"{work}/alloc-on-rep{r}.json"))) for r in reps)
off = min(cost(json.load(open(f"{work}/alloc-off-rep{r}.json"))) for r in reps)
result["alloc_overhead_pct"] = round(100.0 * (on - off) / off, 2)
# Fault-injection overhead: same min-vs-min CPU estimator over the
# inert-plan on/off pairs (see the fault loop for what "inert" means).
fon = min(cost(json.load(open(f"{work}/fault-on-rep{r}.json"))) for r in reps)
foff = min(cost(json.load(open(f"{work}/fault-off-rep{r}.json"))) for r in reps)
result["fault_overhead_pct"] = round(100.0 * (fon - foff) / foff, 2)
# Scoped-observability overhead over the DIVIDE_OBS on/off pairs
# (both legs ran with DIVIDE_ALLOC=off, so this isolates the scope
# machinery from the separately-gated allocator cost). Paired
# estimator — median of per-pair deltas — because the two runs of a
# pair share the host's performance phase while min-vs-min needs both
# legs to independently sample the fast phase (see the obs loop).
obs_deltas = sorted(
    100.0 * (oon - ooff) / ooff
    for r in reps
    for oon in [cost(json.load(open(f"{work}/obs-on-rep{r}.json")))]
    for ooff in [cost(json.load(open(f"{work}/obs-off-rep{r}.json")))])
mid = len(obs_deltas) // 2
obs_median = (obs_deltas[mid] if len(obs_deltas) % 2
              else (obs_deltas[mid - 1] + obs_deltas[mid]) / 2.0)
result["obs_scope_overhead_pct"] = round(obs_median, 2)
# Thread scaling: 4-thread wall over 1-thread wall. < 1.0 means the
# worker pool is paying off; >= 1.0 is the negative-scaling regression
# the pool was built to fix (gated below on hosts with enough cores).
t1, t4 = result["runs"]["threads_1"], result["runs"]["threads_4"]
result["thread_scaling"] = {
    "cold": round(t4["cold_wall_ms"] / t1["cold_wall_ms"], 4),
    "warm": round(t4["warm_wall_ms"] / t1["warm_wall_ms"], 4),
}
# End-to-end warm decode throughput: snapshot payload bytes read over
# the single-threaded warm dataset stage's wall-clock (MB/s) — the
# number the columnar v2 codec is meant to move.
stage_ms = t1["warm_dataset_stage_ms"] or 0.0
result["decode_throughput_mbps"] = (
    round(t1["cache_bytes_read"] / 1e6 / (stage_ms / 1e3), 2) if stage_ms else 0.0)
# Per-kernel criterion medians (bench_kernels' KERNELS_JSON line).
with open(f"{work}/kernels.json") as f:
    result["kernels"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
for name, run in result["runs"].items():
    print(f"[bench] {name}: cold {run['cold_wall_ms']:.0f} ms, "
          f"warm {run['warm_wall_ms']:.0f} ms ({run['warm_speedup']:.2f}x), "
          f"trace overhead {run['trace_overhead_pct']:+.1f}%, "
          f"peak rss {run['peak_rss_kb']} kB")
print(f"[bench] allocator overhead (1-thread cpu floor): {result['alloc_overhead_pct']:+.2f}%")
print(f"[bench] fault-site overhead (1-thread cpu floor): {result['fault_overhead_pct']:+.2f}%")
print(f"[bench] obs-scope overhead (paired-median 1-thread cpu): {result['obs_scope_overhead_pct']:+.2f}%")
scaling = result["thread_scaling"]
print(f"[bench] thread scaling (threads_4 / threads_1): "
      f"cold {scaling['cold']:.2f}x, warm {scaling['warm']:.2f}x")
print(f"[bench] warm decode throughput: {result['decode_throughput_mbps']:.1f} MB/s; "
      f"snapshot_decode median {result['kernels']['snapshot_decode_ms']:.3f} ms")
print(f"[bench] wrote {out_path}")
PY

# Allocator-overhead gate: the tracking allocator's budget is < 2%
# wall-clock on the paper-scale pipeline (DESIGN.md §12).
# BENCH_ALLOC_SKIP=1 bypasses on a box too loaded even for the
# min-vs-min estimator.
if [ "${BENCH_ALLOC_SKIP:-0}" = "1" ]; then
    echo "[bench] BENCH_ALLOC_SKIP=1: allocator-overhead gate skipped"
else
    python3 - BENCH_tier1.json "${BENCH_ALLOC_GATE_PCT:-2}" <<'PY'
import json, sys

pct = json.load(open(sys.argv[1]))["alloc_overhead_pct"]
budget = float(sys.argv[2])
if pct >= budget:
    sys.exit(f"[bench] allocator overhead {pct:+.2f}% >= {budget}% budget "
             "(BENCH_ALLOC_SKIP=1 to bypass)")
print(f"[bench] allocator-overhead gate passed: {pct:+.2f}% < {budget}%")
PY
fi

# Fault-site-overhead gate: the injection probes' budget is < 1%
# (DESIGN.md §13) — the sites must stay effectively free when no fault
# ever fires. BENCH_FAULT_SKIP=1 bypasses on a loaded box.
if [ "${BENCH_FAULT_SKIP:-0}" = "1" ]; then
    echo "[bench] BENCH_FAULT_SKIP=1: fault-overhead gate skipped"
else
    python3 - BENCH_tier1.json "${BENCH_FAULT_GATE_PCT:-1}" <<'PY'
import json, sys

pct = json.load(open(sys.argv[1]))["fault_overhead_pct"]
budget = float(sys.argv[2])
if pct >= budget:
    sys.exit(f"[bench] fault-site overhead {pct:+.2f}% >= {budget}% budget "
             "(BENCH_FAULT_SKIP=1 to bypass)")
print(f"[bench] fault-overhead gate passed: {pct:+.2f}% < {budget}%")
PY
fi

# Scoped-observability gate: the handle-based scope machinery's budget
# is < 2% CPU on the paper-scale pipeline (DESIGN.md §15) — per-stage
# attribution must stay effectively free. BENCH_OBS_SKIP=1 bypasses on
# a loaded box.
if [ "${BENCH_OBS_SKIP:-0}" = "1" ]; then
    echo "[bench] BENCH_OBS_SKIP=1: obs-scope-overhead gate skipped"
else
    python3 - BENCH_tier1.json "${BENCH_OBS_GATE_PCT:-2}" <<'PY'
import json, sys

pct = json.load(open(sys.argv[1]))["obs_scope_overhead_pct"]
budget = float(sys.argv[2])
if pct >= budget:
    sys.exit(f"[bench] obs-scope overhead {pct:+.2f}% >= {budget}% budget "
             "(BENCH_OBS_SKIP=1 to bypass)")
print(f"[bench] obs-scope-overhead gate passed: {pct:+.2f}% < {budget}%")
PY
fi

# Negative-scaling gate: with >= 4 physical cores, 4 threads must beat
# 1 thread on both the cold and warm paper-scale runs.
cores="$(nproc 2>/dev/null || echo 1)"
if [ "${BENCH_SCALING_SKIP:-0}" = "1" ]; then
    echo "[bench] BENCH_SCALING_SKIP=1: thread-scaling gate skipped"
elif [ "$cores" -ge 4 ]; then
    python3 - BENCH_tier1.json <<'PY'
import json, sys

scaling = json.load(open(sys.argv[1]))["thread_scaling"]
bad = {k: v for k, v in scaling.items() if v >= 1.0}
if bad:
    sys.exit(f"[bench] negative thread scaling: {bad} "
             "(threads_4 should be faster; BENCH_SCALING_SKIP=1 to bypass)")
print("[bench] thread-scaling gate passed: 4 threads beat 1 thread")
PY
else
    echo "[bench] $cores core(s) < 4: thread-scaling gate skipped (ratio recorded only)"
fi

# Decode-throughput gate (--gate only): the warm dataset stage is the
# snapshot decode path; a throughput more than BENCH_GATE_PCT percent
# below the committed BENCH_tier1.json means the codec or its consumers
# regressed. The first bench on a branch with no committed baseline
# (or one predating the field) passes.
if [ $gate -eq 1 ]; then
    if [ "${BENCH_DECODE_SKIP:-0}" = "1" ]; then
        echo "[bench] BENCH_DECODE_SKIP=1: decode-throughput gate skipped"
    elif git show HEAD:BENCH_tier1.json > "$work/bench-base.json" 2>/dev/null; then
        python3 - BENCH_tier1.json "$work/bench-base.json" "${BENCH_GATE_PCT:-20}" <<'PY'
import json, sys

cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
budget = float(sys.argv[3])
old = base.get("decode_throughput_mbps")
new = cur.get("decode_throughput_mbps", 0.0)
if not old:
    print("[bench] committed BENCH_tier1.json has no decode_throughput_mbps: "
          "gate skipped")
    sys.exit(0)
drop = 100.0 * (old - new) / old
if drop > budget:
    sys.exit(f"[bench] decode throughput {new:.1f} MB/s is {drop:.1f}% below the "
             f"committed {old:.1f} MB/s (> {budget}% budget; "
             "BENCH_DECODE_SKIP=1 to bypass)")
print(f"[bench] decode-throughput gate passed: {new:.1f} MB/s "
      f"vs {old:.1f} MB/s committed")
PY
    else
        echo "[bench] no committed BENCH_tier1.json: decode-throughput gate skipped"
    fi
fi

# Trend gate: the warm runs above appended to $ledger; `divide
# history` compares the newest against the median of its predecessors
# (same command/scale/threads) and exits 3 on a regression. The first
# invocation has nothing to gate against and passes. Stages under
# BENCH_GATE_MIN_MS never gate: at paper scale the few-millisecond
# stages are scheduler noise, not signal.
if [ $gate -eq 1 ]; then
    echo "[bench] gating the newest warm run against the ledger trend"
    ./target/release/divide history --ledger "$ledger" \
        --max-regress-pct "${BENCH_GATE_PCT:-20}" \
        --min-wall-ms "${BENCH_GATE_MIN_MS:-10}"
fi
