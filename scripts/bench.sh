#!/usr/bin/env bash
# Bench harness: paper-scale cold and warm cached runs of the full
# pipeline (`divide --scale paper all`) at 1 and 4 worker threads,
# each captured via --metrics-out and merged into BENCH_tier1.json at
# the repo root. The warm runs must be pure cache hits; the JSON
# records both wall-clocks so the snapshot cache's win is a tracked
# number, not an anecdote.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "[bench] cargo build --release -p divide-cli"
cargo build --release -p divide-cli

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

for threads in 1 4; do
    cachedir="$work/cache-$threads"
    for phase in cold warm; do
        out="$work/$phase-$threads"
        echo "[bench] divide --scale paper all --threads $threads ($phase)"
        ./target/release/divide --scale paper all \
            --out "$out" --cache "$cachedir" --threads "$threads" -q \
            --metrics-out "$work/$phase-$threads.json" >/dev/null
    done
    # Warm must be byte-identical to cold — a bench that changed the
    # artifacts would be measuring a different program.
    diff -r --exclude run_manifest.json "$work/cold-$threads" "$work/warm-$threads" \
        || { echo "[bench] warm artifacts differ at $threads threads" >&2; exit 1; }
done

python3 - "$work" BENCH_tier1.json <<'PY'
import json, sys

work, out_path = sys.argv[1], sys.argv[2]
result = {"schema": "divide/bench-tier1/v1", "scale": "paper", "command": "all", "runs": {}}
for threads in (1, 4):
    cold = json.load(open(f"{work}/cold-{threads}.json"))
    warm = json.load(open(f"{work}/warm-{threads}.json"))
    wc = warm["counters"]
    assert wc.get("cache.hit", 0) >= 1, f"warm run at {threads} threads missed the cache: {wc}"
    result["runs"][f"threads_{threads}"] = {
        "cold_wall_ms": cold["wall_ms"],
        "warm_wall_ms": warm["wall_ms"],
        "cold_dataset_stage_ms": cold["stages"].get("dataset"),
        "warm_dataset_stage_ms": warm["stages"].get("dataset"),
        "warm_speedup": cold["wall_ms"] / warm["wall_ms"],
        "cache_bytes_written": cold["counters"].get("cache.bytes_written", 0),
        "cache_bytes_read": wc.get("cache.bytes_read", 0),
    }
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
for name, run in result["runs"].items():
    print(f"[bench] {name}: cold {run['cold_wall_ms']:.0f} ms, "
          f"warm {run['warm_wall_ms']:.0f} ms ({run['warm_speedup']:.2f}x)")
print(f"[bench] wrote {out_path}")
PY
