#!/usr/bin/env bash
# Bench harness: paper-scale cold and warm cached runs of the full
# pipeline (`divide --scale paper all`) at 1 and 4 worker threads,
# each captured via --metrics-out and merged into BENCH_tier1.json at
# the repo root. The warm runs must be pure cache hits; the JSON
# records both wall-clocks so the snapshot cache's win is a tracked
# number, not an anecdote. Extra warm runs at 4 threads (best of 3,
# --trace vs plain) record the timeline recorder's overhead.
#
# The JSON also records `thread_scaling` — the threads_4/threads_1
# wall-clock ratios (cold and warm). On hosts with >= 4 cores a ratio
# >= 1.0 means adding workers made the run *slower* (the negative
# scaling bug ROADMAP item 1 tracked) and the script fails; set
# BENCH_SCALING_SKIP=1 to bypass on a loaded or shared box. Below 4
# cores the check is skipped: the ratio is recorded but meaningless.
#
# Usage:
#   scripts/bench.sh          regenerate BENCH_tier1.json
#   scripts/bench.sh --gate   regenerate, then `divide report` the new
#                             numbers against the previous file; exits
#                             non-zero when a wall-clock regressed by
#                             more than $BENCH_GATE_PCT percent (20).
set -euo pipefail

cd "$(dirname "$0")/.."

gate=0
if [ "${1:-}" = "--gate" ]; then
    gate=1
    shift
fi
[ $# -eq 0 ] || { echo "usage: scripts/bench.sh [--gate]" >&2; exit 2; }

echo "[bench] cargo build --release -p divide-cli"
cargo build --release -p divide-cli

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

if [ $gate -eq 1 ] && [ -s BENCH_tier1.json ]; then
    cp BENCH_tier1.json "$work/baseline.json"
fi

for threads in 1 4; do
    cachedir="$work/cache-$threads"
    for phase in cold warm; do
        out="$work/$phase-$threads"
        echo "[bench] divide --scale paper all --threads $threads ($phase)"
        ./target/release/divide --scale paper all \
            --out "$out" --cache "$cachedir" --threads "$threads" -q \
            --metrics-out "$work/$phase-$threads.json" >/dev/null
    done
    # Warm must be byte-identical to cold — a bench that changed the
    # artifacts would be measuring a different program.
    diff -r --exclude run_manifest.json "$work/cold-$threads" "$work/warm-$threads" \
        || { echo "[bench] warm artifacts differ at $threads threads" >&2; exit 1; }
done

# Tracing overhead: the same warm 4-thread run with the recorder on
# vs off, best of 3 each — single samples are all scheduler noise on a
# loaded box.
echo "[bench] divide --scale paper all --threads 4 (warm, --trace vs plain, 3x each)"
for rep in 1 2 3; do
    ./target/release/divide --scale paper all \
        --out "$work/plain-rep" --cache "$work/cache-4" --threads 4 -q \
        --metrics-out "$work/plain-rep$rep.json" >/dev/null
    ./target/release/divide --scale paper all \
        --out "$work/traced-rep" --cache "$work/cache-4" --threads 4 -q --trace \
        --metrics-out "$work/traced-rep$rep.json" >/dev/null
done
diff -r --exclude run_manifest.json --exclude trace.json --exclude trace.folded \
    "$work/warm-4" "$work/traced-rep" \
    || { echo "[bench] --trace changed artifact bytes" >&2; exit 1; }

python3 - "$work" BENCH_tier1.json <<'PY'
import json, sys

work, out_path = sys.argv[1], sys.argv[2]
result = {"schema": "divide/bench-tier1/v1", "scale": "paper", "command": "all", "runs": {}}
for threads in (1, 4):
    cold = json.load(open(f"{work}/cold-{threads}.json"))
    warm = json.load(open(f"{work}/warm-{threads}.json"))
    wc = warm["counters"]
    assert wc.get("cache.hit", 0) >= 1, f"warm run at {threads} threads missed the cache: {wc}"
    result["runs"][f"threads_{threads}"] = {
        "cold_wall_ms": cold["wall_ms"],
        "warm_wall_ms": warm["wall_ms"],
        "cold_dataset_stage_ms": cold["stages"].get("dataset"),
        "warm_dataset_stage_ms": warm["stages"].get("dataset"),
        "warm_speedup": cold["wall_ms"] / warm["wall_ms"],
        "cache_bytes_written": cold["counters"].get("cache.bytes_written", 0),
        "cache_bytes_read": wc.get("cache.bytes_read", 0),
    }
plain = min(json.load(open(f"{work}/plain-rep{r}.json"))["wall_ms"] for r in (1, 2, 3))
traced = min(json.load(open(f"{work}/traced-rep{r}.json"))["wall_ms"] for r in (1, 2, 3))
warm = result["runs"]["threads_4"]
# Informational (not a *_ms key pair the gate compares): tracing's cost
# relative to the identical untraced warm run, best of 3 each.
warm["trace_overhead_pct"] = round(100.0 * (traced - plain) / plain, 2)
# Thread scaling: 4-thread wall over 1-thread wall. < 1.0 means the
# worker pool is paying off; >= 1.0 is the negative-scaling regression
# the pool was built to fix (gated below on hosts with enough cores).
t1, t4 = result["runs"]["threads_1"], result["runs"]["threads_4"]
result["thread_scaling"] = {
    "cold": round(t4["cold_wall_ms"] / t1["cold_wall_ms"], 4),
    "warm": round(t4["warm_wall_ms"] / t1["warm_wall_ms"], 4),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
for name, run in result["runs"].items():
    print(f"[bench] {name}: cold {run['cold_wall_ms']:.0f} ms, "
          f"warm {run['warm_wall_ms']:.0f} ms ({run['warm_speedup']:.2f}x)")
print(f"[bench] trace overhead at 4 threads: {warm['trace_overhead_pct']:+.1f}%")
scaling = result["thread_scaling"]
print(f"[bench] thread scaling (threads_4 / threads_1): "
      f"cold {scaling['cold']:.2f}x, warm {scaling['warm']:.2f}x")
print(f"[bench] wrote {out_path}")
PY

# Negative-scaling gate: with >= 4 physical cores, 4 threads must beat
# 1 thread on both the cold and warm paper-scale runs.
cores="$(nproc 2>/dev/null || echo 1)"
if [ "${BENCH_SCALING_SKIP:-0}" = "1" ]; then
    echo "[bench] BENCH_SCALING_SKIP=1: thread-scaling gate skipped"
elif [ "$cores" -ge 4 ]; then
    python3 - BENCH_tier1.json <<'PY'
import json, sys

scaling = json.load(open(sys.argv[1]))["thread_scaling"]
bad = {k: v for k, v in scaling.items() if v >= 1.0}
if bad:
    sys.exit(f"[bench] negative thread scaling: {bad} "
             "(threads_4 should be faster; BENCH_SCALING_SKIP=1 to bypass)")
print("[bench] thread-scaling gate passed: 4 threads beat 1 thread")
PY
else
    echo "[bench] $cores core(s) < 4: thread-scaling gate skipped (ratio recorded only)"
fi

if [ $gate -eq 1 ]; then
    if [ -s "$work/baseline.json" ]; then
        echo "[bench] gating new numbers against the previous BENCH_tier1.json"
        ./target/release/divide report \
            --baseline "$work/baseline.json" \
            --candidate BENCH_tier1.json \
            --max-regress-pct "${BENCH_GATE_PCT:-20}"
    else
        echo "[bench] --gate: no previous BENCH_tier1.json; nothing to compare"
    fi
fi
