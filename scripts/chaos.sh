#!/usr/bin/env bash
# Chaos harness: run N seeded fault plans against `divide --scale small
# all` and assert the robustness contract (DESIGN.md §13) — every run
# either produces artifacts byte-identical to a fault-free reference or
# exits with a typed nonzero code; never a raw panic, never a torn or
# partial artifact, never a leftover *.tmp staging file.
#
#   CHAOS_PLANS=N   number of seeded plans to run (default 20)
#
# Exits non-zero on the first contract violation.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=./target/release/divide
PLANS="${CHAOS_PLANS:-20}"

if [ ! -x "$BIN" ]; then
    echo "[chaos] building divide (release)"
    cargo build --release -q -p divide-cli
fi

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
cache="$scratch/cache"
ref="$scratch/ref"

echo "[chaos] fault-free reference run (prewarms the shared cache)"
"$BIN" --scale small all --out "$ref" --cache "$cache" -q >/dev/null

# Plan templates cycled over the seeds. Sites chosen to hit every
# choke point: artifact writes (all three io.* phases), warm-cache
# decode, the ledger appender, a stage abort, and worker-chunk panic/
# delay on the pool.
templates=(
    "io.write:p=0.4"
    "io.rename:nth=2"
    "io.fsync:p=0.6"
    "cache.decode:nth=1"
    "ledger.append:p=1"
    "stage.fig3:nth=1"
    "pool.chunk:nth=3,mode=panic"
    "pool.chunk:nth=2,mode=delay,delay_ms=20"
)

fail() {
    echo "[chaos] FAIL (plan \"$plan\"): $1" >&2
    sed 's/^/[chaos]   stderr: /' "$errfile" | tail -20 >&2
    exit 1
}

identical=0
typed=0
for i in $(seq 1 "$PLANS"); do
    tmpl="${templates[$(( (i - 1) % ${#templates[@]} ))]}"
    plan="seed=$i;$tmpl"
    out="$scratch/run$i"
    errfile="$scratch/run$i.stderr"
    set +e
    DIVIDE_PAR_THRESHOLD_NS=0 "$BIN" --threads 4 --scale small all \
        --out "$out" --cache "$cache" --fault-plan "$plan" -q \
        >"$scratch/run$i.stdout" 2>"$errfile"
    code=$?
    set -e

    # 1. Typed exit codes only: 0 (survived, possibly degraded) or
    #    1 (typed runtime failure). 101 is an uncaught panic; anything
    #    else is an unclassified crash.
    case "$code" in
        0|1) ;;
        *) fail "untyped exit code $code" ;;
    esac

    # 2. Zero raw panics on stderr.
    if grep -q "panicked at" "$errfile"; then
        fail "raw panic output on stderr"
    fi

    # 3. No *.tmp staging files left anywhere.
    leftover="$(find "$out" "$cache" -name '*.tmp*' 2>/dev/null || true)"
    if [ -n "$leftover" ]; then
        fail "leftover staging files: $leftover"
    fi

    # 4. Every artifact that exists is whole: JSON parses, CSV/SVG/
    #    folded files end in a newline (a torn write would not).
    python3 - "$out" <<'PY' || fail "torn or truncated artifact"
import json, pathlib, sys

out = pathlib.Path(sys.argv[1])
for p in sorted(out.iterdir()):
    if not p.is_file():
        continue
    body = p.read_bytes()
    assert body, f"empty artifact {p.name}"
    if p.suffix == ".json":
        json.loads(body)
    else:
        assert body.endswith(b"\n"), f"unterminated artifact {p.name}"
PY

    # 5. A surviving run's artifacts are byte-identical to the
    #    fault-free reference. The manifest (timings, fault counters)
    #    and checkpoint (io faults can degrade its write on otherwise
    #    clean runs) are bookkeeping, not artifacts.
    if [ "$code" -eq 0 ]; then
        diff -r --exclude run_manifest.json --exclude run_checkpoint.json \
            "$ref" "$out" >/dev/null \
            || fail "exit-0 run artifacts differ from the reference"
        identical=$((identical + 1))
    else
        typed=$((typed + 1))
    fi
    rm -rf "$out"
done
echo "[chaos] $PLANS plans: $identical survived byte-identical, $typed failed typed"

echo "[chaos] interrupt-and-resume leg"
rout="$scratch/resume"
errfile="$scratch/resume.stderr"
plan="seed=99;stage.qoe:nth=1"
set +e
"$BIN" --scale small all --out "$rout" --cache "$cache" \
    --fault-plan "$plan" -q >/dev/null 2>"$errfile"
code=$?
set -e
[ "$code" -eq 1 ] || fail "interrupted run expected exit 1, got $code"
[ -s "$rout/run_checkpoint.json" ] || fail "no checkpoint after interrupt"
# No -q here: the skip confirmation below is info-level.
"$BIN" --scale small all --out "$rout" --cache "$cache" --resume \
    2>"$errfile" >/dev/null \
    || fail "resume run failed"
grep -q "resume: skipping" "$errfile" || fail "resume skipped no stages"
diff -r --exclude run_manifest.json "$ref" "$rout" >/dev/null \
    || fail "resumed run differs from the reference"
echo "[chaos] resumed run is byte-identical (checkpoint included)"

echo "[chaos] OK"
