#!/usr/bin/env bash
# Lint gate: formatting and clippy, both as hard failures. Covers the
# whole workspace including the vendored shims (they are workspace
# members and compile into every build).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "[lint] cargo fmt --all --check"
cargo fmt --all --check

echo "[lint] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "[lint] unwrap/expect deny-list (scripts/unwrap_allowlist.txt)"
# A panic on bad input is not a typed failure (DESIGN.md §13): new
# non-test code must return errors. Provable invariants go on the
# allowlist, keyed by "<path>: <trimmed line>".
python3 - <<'PY'
import pathlib, re, sys

allow = set()
for raw in open("scripts/unwrap_allowlist.txt"):
    raw = raw.rstrip("\n")
    if raw and not raw.startswith("#"):
        allow.add(raw)

pat = re.compile(r"\.unwrap\(\)|\.expect\(")
bad, used = [], set()
for f in sorted(pathlib.Path("crates").glob("*/src/**/*.rs")):
    in_test = False
    for line in f.read_text().splitlines():
        # Test modules tail every file in this workspace; stop scanning
        # at the first cfg(test) marker.
        if "#[cfg(test)]" in line:
            in_test = True
        if in_test:
            continue
        s = line.strip()
        if s.startswith("//") or not pat.search(s):
            continue
        key = f"{f}: {s}"
        if key in allow:
            used.add(key)
        else:
            bad.append(key)

if bad:
    print("[lint] .unwrap()/.expect( in non-test code (return a typed",
          file=sys.stderr)
    print("[lint] error, or allowlist a provable invariant):",
          file=sys.stderr)
    for key in bad:
        print(f"[lint]   {key}", file=sys.stderr)
    sys.exit(1)
for key in sorted(allow - used):
    print(f"[lint] warning: stale allowlist entry: {key}")
print(f"[lint] unwrap deny-list clean ({len(used)} allowlisted)")
PY

echo "[lint] OK"
