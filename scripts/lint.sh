#!/usr/bin/env bash
# Lint gate: formatting and clippy, both as hard failures. Covers the
# whole workspace including the vendored shims (they are workspace
# members and compile into every build).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "[lint] cargo fmt --all --check"
cargo fmt --all --check

echo "[lint] cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "[lint] OK"
