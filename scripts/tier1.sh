#!/usr/bin/env bash
# Tier-1 verify: build the whole workspace, run every test, then smoke
# the `divide` CLI end-to-end at small scale into a throwaway directory.
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "[tier1] cargo build --release --workspace"
cargo build --release --workspace

echo "[tier1] cargo test -q --workspace"
cargo test -q --workspace

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "[tier1] divide --scale small all --out $out"
./target/release/divide --scale small all --out "$out"

# The smoke run must actually produce artifacts.
for f in fig1_cdf.csv fig2_sweep.csv fig3_tail.csv fig4_affordability.csv table2.csv; do
    [ -s "$out/$f" ] || { echo "[tier1] missing artifact: $f" >&2; exit 1; }
done

echo "[tier1] divide --help exits 0 and lists every command"
./target/release/divide --help | grep -q timeline

echo "[tier1] OK"
