#!/usr/bin/env bash
# Tier-1 verify: lint, build the whole workspace, run every test, smoke
# the `divide` CLI end-to-end at small scale into a throwaway directory,
# and prove a warm cached run is byte-identical to a cold one.
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "[tier1] lint gate (scripts/lint.sh)"
./scripts/lint.sh

echo "[tier1] cargo build --release --workspace"
cargo build --release --workspace

echo "[tier1] cargo test -q --workspace"
cargo test -q --workspace

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "[tier1] divide --scale small all --out $out"
./target/release/divide --scale small all --out "$out"

# The smoke run must actually produce artifacts, plus the run manifest.
for f in fig1_cdf.csv fig2_sweep.csv fig3_tail.csv fig4_affordability.csv table2.csv \
         run_manifest.json; do
    [ -s "$out/$f" ] || { echo "[tier1] missing artifact: $f" >&2; exit 1; }
done

# At small scale every fan-out is tiny, so the serial-threshold probe
# (or a 1-thread host) must route at least some of them off the pool —
# and account for them under the dedicated serial counter. Read this
# manifest now: the fig2 run below overwrites it.
python3 - "$out/run_manifest.json" <<'PY'
import json, sys

manifest = json.load(open(sys.argv[1]))
counters = manifest["metrics"]["counters"]
assert counters.get("parallel.serial_calls", 0) >= 1, counters
print("[tier1] serial fan-outs accounted under parallel.serial_calls")

# Resource telemetry (DESIGN.md §12): every stage carries positive
# allocator deltas, the resources section carries heap + RSS peaks,
# and artifact writes are accounted under the io.* family.
for stage in manifest["stages"]:
    for field in ("alloc_bytes", "alloc_count", "peak_heap_delta"):
        assert stage.get(field, 0) > 0, (stage["name"], field, stage)
res = manifest["resources"]
for field in ("alloc_calls", "alloc_bytes_total", "peak_heap_bytes",
              "peak_rss_kb", "end_rss_kb"):
    assert res.get(field, 0) > 0, (field, res)
assert counters.get("io.bytes_written", 0) > 0, counters
assert counters.get("io.write_calls", 0) > 0, counters
print("[tier1] manifest carries alloc/RSS telemetry and io.* counters")
PY

# Every observed run appends a ledger record beside the snapshots.
ledger="$out/.divide-cache/runs.jsonl"
python3 - "$ledger" <<'PY'
import json, sys

lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) >= 1, "no ledger record appended"
rec = json.loads(lines[-1])
assert rec["schema"] == "leo-obs/run-ledger/v2", rec["schema"]
assert rec["command"] == "all" and rec["wall_ms"] > 0, rec
assert "dataset" in rec["stages"], sorted(rec["stages"])
assert rec.get("peak_heap_bytes", 0) > 0, rec
# v2 per-stage parallel-efficiency fields: the dataset stage always
# dispatches (or serially accounts) fan-outs, so its record carries
# busy_ns/chunks — zero is fine on a serial host, absence is not.
dataset = rec["stages"]["dataset"]
assert "busy_ns" in dataset and "chunks" in dataset, dataset
print("[tier1] run appended a valid run-ledger/v2 record")
PY

# Every run leaves a verifiable stage checkpoint beside the artifacts
# (DESIGN.md §13): schema-tagged, with each pipeline stage recorded and
# every artifact checksum matching the bytes on disk.
python3 - "$out" <<'PY'
import json, pathlib, sys

out = pathlib.Path(sys.argv[1])
doc = json.load(open(out / "run_checkpoint.json"))
assert doc["schema"] == "divide/checkpoint/v1", doc["schema"]
stages = {s["name"]: s["artifacts"] for s in doc["stages"]}
for stage in ("table1", "table2", "fig1", "fig2", "fig3", "fig4", "qoe"):
    assert stage in stages, f"checkpoint missing stage {stage}"

def fnv1a64(data):
    h = 0xcbf29ce484222325
    for b in data:
        h = ((h ^ b) * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
    return f"{h:016x}"

checked = 0
for artifacts in stages.values():
    for a in artifacts:
        body = (out / a["name"]).read_bytes()
        assert fnv1a64(body) == a["fnv1a64"], f"checksum mismatch: {a['name']}"
        checked += 1
assert checked >= 5, f"only {checked} artifact checksums recorded"
print(f"[tier1] checkpoint validates ({checked} artifact checksums verified)")
PY

echo "[tier1] divide fig2 --quiet --metrics-out writes a valid bench record"
bench="$out/BENCH_fig2.json"
quiet_err="$out/quiet_stderr.txt"
./target/release/divide --scale small fig2 --out "$out" --quiet \
    --metrics-out "$bench" 2>"$quiet_err"
if grep -q '\[info\]' "$quiet_err"; then
    echo "[tier1] --quiet leaked info-level stderr:" >&2
    cat "$quiet_err" >&2
    exit 1
fi
python3 - "$bench" "$out/run_manifest.json" <<'PY'
import json, sys

bench = json.load(open(sys.argv[1]))
for key in ("schema", "command", "scale", "seed", "threads", "wall_ms",
            "stages", "counters"):
    assert key in bench, f"bench record missing {key!r}"
assert bench["schema"] == "leo-obs/bench/v1", bench["schema"]
assert bench["command"] == "fig2", bench["command"]
assert bench["seed"] == 7, bench["seed"]
assert bench["threads"] >= 1, bench["threads"]
assert "dataset" in bench["stages"] and "fig2" in bench["stages"], bench["stages"]

manifest = json.load(open(sys.argv[2]))
for key in ("schema", "command", "seed", "threads", "stages", "spans", "metrics"):
    assert key in manifest, f"run manifest missing {key!r}"
stage_names = [s["name"] for s in manifest["stages"]]
assert stage_names[0] == "dataset", stage_names
print("[tier1] bench record and manifest validate")
PY

echo "[tier1] cold vs warm cached runs produce identical artifact trees"
# The cache lives OUTSIDE both output trees so `diff -r` compares only
# artifacts; run_manifest.json is excluded (it records wall-clock).
cachedir="$(mktemp -d)"
cold="$(mktemp -d)"
warm="$(mktemp -d)"
trap 'rm -rf "$out" "$cachedir" "$cold" "$warm"' EXIT
./target/release/divide --scale small all --out "$cold" --cache "$cachedir" -q
./target/release/divide --scale small all --out "$warm" --cache "$cachedir" -q
diff -r --exclude run_manifest.json "$cold" "$warm" \
    || { echo "[tier1] warm run artifacts differ from cold" >&2; exit 1; }
python3 - "$cold/run_manifest.json" "$warm/run_manifest.json" <<'PY'
import json, sys

cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))

def span_names(spans, acc):
    for s in spans:
        acc.add(s["name"])
        span_names(s["children"], acc)
    return acc

# The cold run generated and wrote snapshots.
cc = cold["metrics"]["counters"]
assert cc.get("cache.miss", 0) >= 1, cc
assert cc.get("cache.bytes_written", 0) > 0, cc
assert "demand.generate" in span_names(cold["spans"], set()), "cold run did not generate"

# The warm run was a pure cache hit: no generation span at all.
wc = warm["metrics"]["counters"]
assert wc.get("cache.hit", 0) >= 1, wc
assert wc.get("cache.bytes_read", 0) > 0, wc
names = span_names(warm["spans"], set())
assert "demand.generate" not in names, f"warm run regenerated: {sorted(names)}"
assert "cache.decode" in names, sorted(names)
print("[tier1] warm run hit the cache and skipped generation")
PY

echo "[tier1] --no-cache run matches the cached runs byte for byte"
nocache="$(mktemp -d)"
trap 'rm -rf "$out" "$cachedir" "$cold" "$warm" "$nocache"' EXIT
./target/release/divide --scale small all --out "$nocache" --no-cache -q
diff -r --exclude run_manifest.json "$cold" "$nocache" \
    || { echo "[tier1] --no-cache artifacts differ" >&2; exit 1; }

echo "[tier1] stale-schema snapshot fails closed and regenerates"
# Rewind the on-disk dataset container to schema v1 (the little-endian
# u32 at byte 12, after the 8-byte magic and 4-byte container version).
# The next run must treat it as cache.invalid, regenerate byte-identical
# artifacts, and re-save the snapshot at the current schema.
python3 - "$cachedir" <<'PY'
import glob, sys

snaps = glob.glob(f"{sys.argv[1]}/dataset-*.snap")
assert snaps, "no dataset snapshot to age"
for path in snaps:
    body = bytearray(open(path, "rb").read())
    body[12:16] = (1).to_bytes(4, "little")
    open(path, "wb").write(bytes(body))
PY
stale="$(mktemp -d)"
trap 'rm -rf "$out" "$cachedir" "$cold" "$warm" "$nocache" "$stale"' EXIT
./target/release/divide --scale small all --out "$stale" --cache "$cachedir" -q
diff -r --exclude run_manifest.json "$cold" "$stale" \
    || { echo "[tier1] stale-schema regeneration artifacts differ" >&2; exit 1; }
python3 - "$stale/run_manifest.json" <<'PY'
import json, sys

counters = json.load(open(sys.argv[1]))["metrics"]["counters"]
assert counters.get("cache.invalid", 0) >= 1, counters
assert counters.get("cache.bytes_written", 0) > 0, counters
print("[tier1] v1-schema container invalidated, regenerated, re-saved")
PY

echo "[tier1] --trace writes a valid Chrome trace without touching artifacts"
traced="$(mktemp -d)"
trap 'rm -rf "$out" "$cachedir" "$cold" "$warm" "$nocache" "$traced"' EXIT
# Threshold 0 disables the serial-threshold probe so every fan-out is
# forced through the pool — worker lanes must exist however fast the
# host runs small-scale chunks.
DIVIDE_PAR_THRESHOLD_NS=0 \
./target/release/divide --scale small all --out "$traced" --no-cache \
    --threads 4 --trace -q
diff -r --exclude run_manifest.json --exclude trace.json --exclude trace.folded \
    "$cold" "$traced" \
    || { echo "[tier1] --trace changed artifact bytes" >&2; exit 1; }
python3 - "$traced" <<'PY'
import collections, json, sys

traced = sys.argv[1]
doc = json.load(open(f"{traced}/trace.json"))
events = doc["traceEvents"]
assert events, "empty trace"

# Lane names: main plus one lane per worker index at --threads 4,
# plus the memory counter lane.
lanes = {e["args"]["name"]: e["tid"] for e in events
         if e.get("ph") == "M" and e.get("name") == "thread_name"}
for lane in ("main", "worker-0", "worker-1", "worker-2", "worker-3", "mem"):
    assert lane in lanes, f"missing lane {lane}: {sorted(lanes)}"

# Span boundaries sample the heap onto the mem lane as "C" events.
heap_samples = [e for e in events
                if e.get("ph") == "C" and e.get("name") == "heap_bytes"]
assert len(heap_samples) >= 2, f"{len(heap_samples)} heap counter events"
assert any(e["args"].get("bytes", 0) > 0 for e in heap_samples), heap_samples[:3]

# Balanced B/E and non-decreasing timestamps per lane.
balance = collections.Counter()
last_ts = {}
for e in events:
    ph = e["ph"]
    if ph == "M":
        continue
    tid = e["tid"]
    assert e["ts"] >= last_ts.get(tid, 0.0), f"ts went backwards in tid {tid}"
    last_ts[tid] = e["ts"]
    if ph == "B":
        balance[tid] += 1
    elif ph == "E":
        balance[tid] -= 1
assert all(v == 0 for v in balance.values()), f"unbalanced B/E: {balance}"

# Folded stacks must agree with the manifest's span totals (<=1% or
# 50 us of slack; the shared-timestamp design makes it exact today).
manifest = json.load(open(f"{traced}/run_manifest.json"))

# The worker pool must have been exercised and measured: pooled
# fan-outs counted, >= 4 chunks dispatched, and --threads 4 having
# spawned the 3 persistent workers behind lanes worker-1..worker-3.
counters = manifest["metrics"]["counters"]
assert counters.get("parallel.par_map_calls", 0) >= 1, counters
assert counters.get("parallel.chunks", 0) >= 4, counters
assert counters.get("parallel.pool_spawned_threads", 0) >= 3, counters
# Main lane only: worker-lane chunks now carry their owning stage's
# span path as parent frames (so flamegraphs telescope), and that busy
# time is already inside the stage's inclusive main-lane total.
folded = collections.defaultdict(int)
worker_parented = 0
for line in open(f"{traced}/trace.folded"):
    stack, ns = line.rsplit(" ", 1)
    frames = stack.split(";")
    if frames[0].startswith("worker-"):
        if any(f.startswith("stage.") for f in frames[1:]):
            worker_parented += 1
        continue
    if frames[0] != "main":
        continue
    for frame in set(frames[1:]):
        folded[frame] += int(ns)
for span in manifest["spans"]:
    name, total = span["name"], span["total_ns"]
    got = folded.get(name, 0)
    assert abs(got - total) <= max(0.01 * total, 5e4), \
        f"span {name}: manifest {total} ns vs folded {got} ns"
assert worker_parented >= 1, \
    "no worker chunk telescoped under a stage.* parent frame"

# Per-stage parallel attribution (DESIGN.md §15): with the probe off
# every fan-out pools, so the dataset stage carries a parallel section,
# and the per-stage busy/chunk sums reconcile exactly with the pool's
# process-wide counters (both sides accumulate the same values).
stage_par = {s["name"]: s["parallel"] for s in manifest["stages"]
             if "parallel" in s}
assert "dataset" in stage_par, sorted(s["name"] for s in manifest["stages"])
assert stage_par["dataset"]["chunks"] >= 4, stage_par["dataset"]
for name, par in stage_par.items():
    assert sum(par["per_worker_busy_ns"]) == par["busy_ns"], (name, par)
busy_sum = sum(p["busy_ns"] for p in stage_par.values())
chunk_sum = sum(p["chunks"] for p in stage_par.values())
assert busy_sum == counters.get("parallel.worker_busy_ns_total", 0), \
    (busy_sum, counters.get("parallel.worker_busy_ns_total"))
assert chunk_sum == counters.get("parallel.chunks", 0), \
    (chunk_sum, counters.get("parallel.chunks"))
print(f"[tier1] trace validates: {len(events)} events, {len(lanes)} lanes; "
      f"{len(stage_par)} stages carry reconciled parallel sections")
PY

echo "[tier1] divide report gates on regressions"
./target/release/divide report \
    --baseline "$traced/run_manifest.json" \
    --candidate "$traced/run_manifest.json" >/dev/null \
    || { echo "[tier1] self-diff report should exit 0" >&2; exit 1; }
python3 - "$traced/run_manifest.json" "$out/slowed_manifest.json" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
for stage in doc["stages"]:
    if stage["name"] == "dataset":
        stage["wall_ms"] = max(stage["wall_ms"] * 10, 100.0)
json.dump(doc, open(sys.argv[2], "w"))
PY
if ./target/release/divide report \
    --baseline "$traced/run_manifest.json" \
    --candidate "$out/slowed_manifest.json" >/dev/null; then
    echo "[tier1] report missed a 10x dataset-stage regression" >&2
    exit 1
fi

echo "[tier1] divide history trends over the cold+warm ledger"
# The cold and warm runs above share $cachedir, so its ledger holds two
# comparable records; a healthy pair must render a table and exit 0.
# Lenient thresholds on purpose: this smoke checks plumbing and exit
# codes, not this box's perf (scripts/bench.sh owns that) — with the
# defaults, scheduler noise on a loaded host can swing a small stage
# past 20% and flake the "healthy" half. The injected 10x regression
# below (+900%) still trips the 300% gate.
history_gate="--max-regress-pct 300 --min-wall-ms 50"
history_out="$(./target/release/divide history --ledger "$cachedir/runs.jsonl" $history_gate)" \
    || { echo "[tier1] healthy history should exit 0" >&2; exit 1; }
grep -q 'total wall' <<<"$history_out"
grep -q 'dataset wall' <<<"$history_out"
# Append a 10x-slower clone of the newest record: history must gate.
python3 - "$cachedir/runs.jsonl" <<'PY'
import json, sys

path = sys.argv[1]
rec = json.loads([l for l in open(path) if l.strip()][-1])
rec["wall_ms"] = max(rec["wall_ms"] * 10, 1000.0)
for stage in rec["stages"].values():
    stage["wall_ms"] = max(stage["wall_ms"] * 10, 1000.0)
open(path, "a").write(json.dumps(rec) + "\n")
PY
if ./target/release/divide history --ledger "$cachedir/runs.jsonl" $history_gate >/dev/null; then
    echo "[tier1] history missed a 10x regression" >&2
    exit 1
fi

echo "[tier1] chaos smoke (scripts/chaos.sh, 6 seeded plans)"
# Full 20-plan sweeps belong to scripts/chaos.sh runs; tier-1 keeps a
# small always-on slice so a broken fault path or torn write can't land.
CHAOS_PLANS=6 ./scripts/chaos.sh

echo "[tier1] divide --help exits 0 and lists every command"
# Capture first: `grep -q` closing the pipe early would EPIPE divide.
help_out="$(./target/release/divide --help)"
grep -q timeline <<<"$help_out"
grep -q metrics-out <<<"$help_out"
grep -q 'no-cache' <<<"$help_out"
grep -q DIVIDE_CACHE <<<"$help_out"
grep -q 'trace' <<<"$help_out"
grep -q 'progress' <<<"$help_out"
grep -q 'report' <<<"$help_out"
grep -q 'history' <<<"$help_out"
grep -q DIVIDE_TRACE <<<"$help_out"
grep -q DIVIDE_ALLOC <<<"$help_out"
grep -q DIVIDE_LEDGER <<<"$help_out"
grep -q 'fault-plan' <<<"$help_out"
grep -q 'resume' <<<"$help_out"
grep -q DIVIDE_FAULT <<<"$help_out"
grep -q DIVIDE_POOL_TIMEOUT_MS <<<"$help_out"
grep -q 'exit codes' <<<"$help_out"

echo "[tier1] OK"
