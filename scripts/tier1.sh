#!/usr/bin/env bash
# Tier-1 verify: build the whole workspace, run every test, then smoke
# the `divide` CLI end-to-end at small scale into a throwaway directory.
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "[tier1] cargo build --release --workspace"
cargo build --release --workspace

echo "[tier1] cargo test -q --workspace"
cargo test -q --workspace

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "[tier1] divide --scale small all --out $out"
./target/release/divide --scale small all --out "$out"

# The smoke run must actually produce artifacts, plus the run manifest.
for f in fig1_cdf.csv fig2_sweep.csv fig3_tail.csv fig4_affordability.csv table2.csv \
         run_manifest.json; do
    [ -s "$out/$f" ] || { echo "[tier1] missing artifact: $f" >&2; exit 1; }
done

echo "[tier1] divide fig2 --quiet --metrics-out writes a valid bench record"
bench="$out/BENCH_fig2.json"
quiet_err="$out/quiet_stderr.txt"
./target/release/divide --scale small fig2 --out "$out" --quiet \
    --metrics-out "$bench" 2>"$quiet_err"
if grep -q '\[info\]' "$quiet_err"; then
    echo "[tier1] --quiet leaked info-level stderr:" >&2
    cat "$quiet_err" >&2
    exit 1
fi
python3 - "$bench" "$out/run_manifest.json" <<'PY'
import json, sys

bench = json.load(open(sys.argv[1]))
for key in ("schema", "command", "scale", "seed", "threads", "wall_ms",
            "stages", "counters"):
    assert key in bench, f"bench record missing {key!r}"
assert bench["schema"] == "leo-obs/bench/v1", bench["schema"]
assert bench["command"] == "fig2", bench["command"]
assert bench["seed"] == 7, bench["seed"]
assert bench["threads"] >= 1, bench["threads"]
assert "dataset" in bench["stages"] and "fig2" in bench["stages"], bench["stages"]

manifest = json.load(open(sys.argv[2]))
for key in ("schema", "command", "seed", "threads", "stages", "spans", "metrics"):
    assert key in manifest, f"run manifest missing {key!r}"
stage_names = [s["name"] for s in manifest["stages"]]
assert stage_names[0] == "dataset", stage_names
print("[tier1] bench record and manifest validate")
PY

echo "[tier1] divide --help exits 0 and lists every command"
# Capture first: `grep -q` closing the pipe early would EPIPE divide.
help_out="$(./target/release/divide --help)"
grep -q timeline <<<"$help_out"
grep -q metrics-out <<<"$help_out"

echo "[tier1] OK"
