//! # starlink-divide-repro
//!
//! Root facade crate for the full reproduction of *"Anyone, Anywhere,
//! not Everyone, Everywhere: Starlink Doesn't End the Digital Divide"*
//! (HotNets 2025).
//!
//! This crate re-exports every workspace crate under one roof so that
//! examples, integration tests, and downstream users can depend on a
//! single package:
//!
//! * [`geomath`] — geodesy and spherical geometry primitives
//! * [`hexgrid`] — hierarchical hexagonal service-cell grid (H3-like)
//! * [`orbit`] — Walker constellations, propagation, coverage, density
//! * [`demand`] — synthetic broadband-map and income datasets
//! * [`capacity`] — Starlink spectrum/beam capacity model
//! * [`parallel`] — deterministic worker pool and memoization layer
//! * [`model`] — the paper's analytical model (findings F1–F4)
//! * [`simnet`] — flow-level oversubscription QoE simulator
//! * [`report`] — tables, CSV, and SVG figure rendering
//! * [`obs`] — spans, metrics, run manifests, leveled logging
//! * [`trace`] — timeline recorder with Chrome-trace/flamegraph export
//! * [`cache`] — content-addressed dataset snapshots for warm runs
//! * [`alloc_track`] — tracking global-allocator wrapper (heap telemetry)

#![forbid(unsafe_code)]

pub use leo_alloc as alloc_track;
pub use leo_cache as cache;
pub use leo_capacity as capacity;
pub use leo_demand as demand;
pub use leo_geomath as geomath;
pub use leo_hexgrid as hexgrid;
pub use leo_obs as obs;
pub use leo_orbit as orbit;
pub use leo_parallel as parallel;
pub use leo_report as report;
pub use leo_simnet as simnet;
pub use leo_trace as trace;
pub use starlink_divide as model;
