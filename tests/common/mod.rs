//! Shared fixtures for the integration suite: one lazily-built
//! test-scale model per test binary (dataset generation costs seconds).

use starlink_divide_repro::model::PaperModel;
use std::sync::OnceLock;

pub fn model() -> &'static PaperModel {
    static MODEL: OnceLock<PaperModel> = OnceLock::new();
    MODEL.get_or_init(PaperModel::test_scale)
}
