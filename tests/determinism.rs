//! The parallelism determinism contract (DESIGN.md §3): every result
//! in the pipeline is a pure function of the seed, never of the thread
//! count. These tests regenerate the dataset under different worker
//! counts and demand *bit-identical* outputs — the same contract the
//! serial seed satisfied before `leo-parallel` existed.

use starlink_divide_repro::demand::dataset::{BroadbandDataset, SynthConfig};
use starlink_divide_repro::model::{coverage_sweep, demand_stats, sizing, PaperModel};
use starlink_divide_repro::parallel::with_threads;
use starlink_divide_repro::report::{CsvWriter, Heatmap};

/// The same tracking allocator the CLI installs, so the resource
/// telemetry tests below exercise the real alloc-count/peak path.
#[global_allocator]
static ALLOC: starlink_divide_repro::alloc_track::TrackingAlloc =
    starlink_divide_repro::alloc_track::TrackingAlloc::new();

/// Everything the figures consume, regenerated from scratch at a given
/// worker count.
struct PipelineOutputs {
    stats: demand_stats::DemandStats,
    table2: Vec<sizing::SizingRow>,
    fig2: Vec<Vec<f64>>,
    cell_counts: Vec<(u64, u64)>,
    scatter_head: Vec<(f64, f64)>,
}

fn run_pipeline(threads: usize) -> PipelineOutputs {
    with_threads(threads, || {
        let ds = BroadbandDataset::generate(&SynthConfig::small());
        let scatter_head: Vec<(f64, f64)> = ds
            .scatter_locations(2024)
            .iter()
            .take(500)
            .map(|l| (l.position.lat_deg(), l.position.lng_deg()))
            .collect();
        let cell_counts = ds
            .cells
            .iter()
            .map(|c| (c.cell.as_u64(), c.locations))
            .collect();
        let model = PaperModel::new(ds);
        PipelineOutputs {
            stats: demand_stats::demand_stats(&model),
            table2: sizing::table2(&model),
            fig2: coverage_sweep::sweep(&model).fraction,
            cell_counts,
            scatter_head,
        }
    })
}

#[test]
fn parallel_pipeline_is_bit_identical_to_serial() {
    let serial = run_pipeline(1);
    let parallel = run_pipeline(4);

    // The raw dataset: same cells, same counts, in the same order.
    assert_eq!(serial.cell_counts, parallel.cell_counts);
    // Fig 1 summary statistics (includes f64 mean — compared exactly).
    assert_eq!(serial.stats, parallel.stats);
    // Table 2 constellation sizes, row by row.
    assert_eq!(serial.table2, parallel.table2);
    // The full Fig 2 fraction grid, compared bit-for-bit.
    assert_eq!(serial.fig2.len(), parallel.fig2.len());
    for (row_s, row_p) in serial.fig2.iter().zip(parallel.fig2.iter()) {
        for (a, b) in row_s.iter().zip(row_p.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "fig2 fraction differs");
        }
    }
    // Location scatter (per-cell RNG streams, order-stable concat).
    assert_eq!(serial.scatter_head, parallel.scatter_head);
}

#[test]
fn oversubscribed_thread_counts_also_agree() {
    // More workers than rows/cells exercises the chunking edge cases
    // (empty chunks, one-element chunks).
    let few = run_pipeline(2);
    let many = run_pipeline(32);
    assert_eq!(few.stats, many.stats);
    assert_eq!(few.table2, many.table2);
    assert_eq!(few.cell_counts, many.cell_counts);
}

/// The exact bytes of representative artifacts (Fig 1 CDF CSV, Fig 2
/// sweep CSV, Fig 2 heatmap SVG), rendered in-process the same way the
/// CLI renders them.
fn artifact_bytes(threads: usize) -> (String, String, String) {
    with_threads(threads, || {
        let model = PaperModel::new(BroadbandDataset::generate(&SynthConfig::small()));
        let mut fig1 = CsvWriter::new();
        fig1.record(&["locations_per_cell", "cumulative_probability"]);
        for &(x, p) in &demand_stats::cdf_series(&model, 400) {
            fig1.record_display(&[x as f64, p]);
        }
        let s = coverage_sweep::sweep(&model);
        let mut fig2 = CsvWriter::new();
        fig2.record(&["beamspread", "oversubscription", "fraction_served"]);
        for (bi, &b) in s.beamspreads.iter().enumerate() {
            for (ri, &r) in s.oversubs.iter().enumerate() {
                fig2.record_display(&[b as f64, r as f64, s.fraction[bi][ri]]);
            }
        }
        let heatmap = Heatmap {
            title: "Fig 2: fraction of US cells served".into(),
            x_label: "oversubscription factor".into(),
            y_label: "beamspread factor".into(),
            xs: s.oversubs.clone(),
            ys: s.beamspreads.clone(),
            values: s.fraction.clone(),
        };
        (
            fig1.finish().to_string(),
            fig2.finish().to_string(),
            heatmap.render(760.0, 460.0),
        )
    })
}

/// The observability determinism contract (leo-obs crate docs): spans,
/// metrics, and the logger only *observe* — turning them off must not
/// change a single artifact byte, at any thread count.
#[test]
fn observability_does_not_perturb_artifact_bytes() {
    use starlink_divide_repro::obs;

    obs::set_enabled(true);
    let on_1 = artifact_bytes(1);
    let on_4 = artifact_bytes(4);
    obs::set_enabled(false);
    let off_1 = artifact_bytes(1);
    let off_4 = artifact_bytes(4);
    obs::set_enabled(true);

    assert_eq!(on_1, off_1, "obs on/off differ at 1 thread");
    assert_eq!(on_4, off_4, "obs on/off differ at 4 threads");
    assert_eq!(on_1, on_4, "thread count leaked into artifacts");
}

/// The resource-telemetry determinism contract (DESIGN.md §12): the
/// tracking allocator, the span high-water-mark hook, and RSS sampling
/// only *count* — with telemetry fully on (tracking + hook, as the CLI
/// installs them), artifact bytes must match a telemetry-off run at
/// every thread count.
#[test]
fn resource_telemetry_does_not_perturb_artifact_bytes() {
    use starlink_divide_repro::obs::resource::{self, AllocHook, AllocReading};
    use starlink_divide_repro::{alloc_track, obs};

    fn read() -> AllocReading {
        let s = alloc_track::stats();
        AllocReading {
            alloc_calls: s.alloc_calls,
            dealloc_calls: s.dealloc_calls,
            allocated_bytes: s.allocated_bytes,
            current_bytes: s.current_bytes,
            peak_bytes: s.peak_bytes,
        }
    }

    obs::set_enabled(true);
    alloc_track::set_tracking(true);
    resource::set_alloc_hook(Some(AllocHook {
        read,
        rebase_span_peak: alloc_track::rebase_span_peak,
        span_peak: alloc_track::span_peak_bytes,
    }));
    let on_1 = artifact_bytes(1);
    let on_4 = artifact_bytes(4);
    assert!(
        alloc_track::stats().alloc_calls > 0,
        "tracking allocator saw no allocations — the telemetry-on leg measured nothing"
    );

    resource::set_alloc_hook(None);
    alloc_track::set_tracking(false);
    let off_1 = artifact_bytes(1);
    let off_4 = artifact_bytes(4);

    assert_eq!(on_1, off_1, "alloc telemetry on/off differ at 1 thread");
    assert_eq!(on_4, off_4, "alloc telemetry on/off differ at 4 threads");
    assert_eq!(on_1, on_4, "thread count leaked into artifacts");
}

/// The timeline recorder shares the observability contract (DESIGN.md
/// §10): recording worker-chunk events and span begin/ends must never
/// change a single artifact byte, at any thread count.
#[test]
fn tracing_does_not_perturb_artifact_bytes() {
    use starlink_divide_repro::{obs, trace};

    obs::set_enabled(true);
    trace::set_enabled(true);
    trace::reset();
    let traced_1 = artifact_bytes(1);
    let traced_4 = artifact_bytes(4);
    trace::set_enabled(false);
    trace::reset();
    let plain_1 = artifact_bytes(1);
    let plain_4 = artifact_bytes(4);

    assert_eq!(traced_1, plain_1, "tracing on/off differ at 1 thread");
    assert_eq!(traced_4, plain_4, "tracing on/off differ at 4 threads");
    assert_eq!(traced_1, traced_4, "thread count leaked into artifacts");
}

/// The persistent worker pool must uphold the same contract as the
/// scoped-thread implementation it replaced: artifacts bit-identical
/// at any worker count. The serial threshold is pinned to 0 so every
/// fan-out is forced through the pool — the test can't silently pass
/// on the probe's serial fallback.
#[test]
fn worker_pool_artifacts_are_bit_identical_at_1_2_8_threads() {
    use starlink_divide_repro::parallel::with_serial_threshold;

    let one = artifact_bytes(1);
    let two = with_serial_threshold(0, || artifact_bytes(2));
    let eight = with_serial_threshold(0, || artifact_bytes(8));
    assert_eq!(one, two, "pool at 2 threads diverged from serial");
    assert_eq!(one, eight, "pool at 8 threads diverged from serial");
}

/// The snapshot-cache determinism contract (DESIGN.md §9): an artifact
/// rendered from a warm snapshot must be byte-equal to one rendered
/// from a cold generation — at every thread count. This is the
/// in-process twin of `scripts/tier1.sh`'s cold/warm `diff -r`.
#[test]
fn warm_snapshot_artifacts_are_bit_identical_to_cold() {
    use starlink_divide_repro::cache::DatasetCache;

    let dir = std::env::temp_dir().join(format!("divide_determinism_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = DatasetCache::new(&dir);
    let cfg = SynthConfig::small();

    let render = |threads: usize, cached: bool| {
        with_threads(threads, || {
            let ds = if cached {
                cache.load_or_generate(&cfg)
            } else {
                BroadbandDataset::generate(&cfg)
            };
            let model = PaperModel::new(ds);
            let s = if cached {
                cache.sweep(&cfg, &model)
            } else {
                coverage_sweep::sweep(&model)
            };
            let mut fig2 = CsvWriter::new();
            fig2.record(&["beamspread", "oversubscription", "fraction_served"]);
            for (bi, &b) in s.beamspreads.iter().enumerate() {
                for (ri, &r) in s.oversubs.iter().enumerate() {
                    fig2.record_display(&[b as f64, r as f64, s.fraction[bi][ri]]);
                }
            }
            let mut fig1 = CsvWriter::new();
            fig1.record(&["locations_per_cell", "cumulative_probability"]);
            for &(x, p) in &demand_stats::cdf_series(&model, 400) {
                fig1.record_display(&[x as f64, p]);
            }
            (fig1.finish().to_string(), fig2.finish().to_string())
        })
    };

    let cold_1 = render(1, false);
    let warm_1 = render(1, true); // first cached call seeds the store
    let warm_again_1 = render(1, true); // this one decodes the snapshot
    let warm_4 = render(4, true);
    let cold_4 = render(4, false);
    let warm_8 = render(8, true);
    let cold_8 = render(8, false);

    assert_eq!(cold_1, warm_1, "cache write path changed artifacts");
    assert_eq!(
        cold_1, warm_again_1,
        "warm decode differs from cold at 1 thread"
    );
    assert_eq!(cold_4, warm_4, "warm decode differs from cold at 4 threads");
    assert_eq!(cold_8, warm_8, "warm decode differs from cold at 8 threads");
    assert_eq!(cold_1, cold_4, "thread count leaked into artifacts");
    assert_eq!(cold_1, cold_8, "thread count leaked into artifacts at 8");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The columnar-layout contract (DESIGN.md §14): the struct-of-arrays
/// view is a bit-exact mirror of the row-major cells — at any thread
/// count, and whether the dataset was generated cold or decoded from a
/// schema-v2 snapshot. The hot kernels (the sensitivity fold, the peak
/// scans) must agree with a scalar walk over the rows.
#[test]
fn columnar_views_mirror_rows_cold_warm_and_across_threads() {
    use starlink_divide_repro::cache::DatasetCache;

    let dir = std::env::temp_dir().join(format!("divide_determinism_cols_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = DatasetCache::new(&dir);
    let cfg = SynthConfig::small();

    let check_mirror = |ds: &BroadbandDataset, label: &str| {
        assert_eq!(ds.cols.len(), ds.cells.len(), "{label}: column length");
        for (i, c) in ds.cells.iter().enumerate() {
            assert_eq!(ds.cols.cell[i], c.cell, "{label}: cell id {i}");
            assert_eq!(ds.cols.locations[i], c.locations, "{label}: count {i}");
            assert_eq!(ds.cols.county[i], c.county, "{label}: county {i}");
            assert_eq!(
                ds.cols.lat_deg[i].to_bits(),
                c.center.lat_deg().to_bits(),
                "{label}: lat {i}"
            );
            assert_eq!(
                ds.cols.lng_deg[i].to_bits(),
                c.center.lng_deg().to_bits(),
                "{label}: lng {i}"
            );
        }
        // Kernels vs the scalar row walk.
        for limit in [0u64, 61, 3_465, u64::MAX] {
            let scalar: u64 = ds
                .cells
                .iter()
                .map(|c| c.locations.saturating_sub(limit))
                .sum();
            assert_eq!(
                ds.cols.unserved_above(limit),
                scalar,
                "{label}: unserved_above({limit})"
            );
        }
    };

    let cold = with_threads(1, || BroadbandDataset::generate(&cfg));
    check_mirror(&cold, "cold serial");
    let cold_8 = with_threads(8, || BroadbandDataset::generate(&cfg));
    check_mirror(&cold_8, "cold 8-thread");
    let _seed = cache.load_or_generate(&cfg); // seeds the snapshot
    let warm = cache.load_or_generate(&cfg); // decodes schema v2
    check_mirror(&warm, "warm decode");
    assert_eq!(cold.cols.cell, warm.cols.cell, "warm cell column diverged");
    assert_eq!(
        cold.cols.locations, warm.cols.locations,
        "warm count column diverged"
    );
    for (a, b) in cold.cols.lat_deg.iter().zip(warm.cols.lat_deg.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm lat column diverged");
    }
    assert_eq!(cold.cols.cell, cold_8.cols.cell, "thread count leaked");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Replays the checked-in proptest regression
/// (`crates/demand/tests/proptests.proptest-regressions`, shrunk to
/// `price = 295.70471053041905`) as a plain test so the historical
/// failure stays covered even if the regression file is pruned.
#[test]
fn affordability_threshold_regression_price_295_70() {
    use starlink_divide_repro::demand::plans::IspPlan;

    let price = 295.70471053041905_f64;
    let plan = IspPlan {
        name: "regression",
        monthly_usd: price,
        dl_mbps: 100.0,
        reliable_broadband: true,
    };
    let threshold = plan.min_affordable_income_usd();
    // The boundary itself is float-rounding sensitive; probe both sides.
    assert!(plan.affordable_for(threshold * 1.000_001));
    assert!(!plan.affordable_for(threshold * 0.999));
    // The threshold is exactly monthly×12/0.02.
    assert!((threshold - price * 600.0).abs() < 1e-6);
}
