//! Integration checks for the experiment harnesses: figure sweeps, the
//! tail walk, affordability CDFs, the QoE simulator, and the orbital
//! validation — run over the shared end-to-end model.

mod common;

use common::model;
use starlink_divide_repro::capacity::beamspread::Beamspread;
use starlink_divide_repro::capacity::oversub::Oversubscription;
use starlink_divide_repro::demand::IspPlan;
use starlink_divide_repro::model::{afford, coverage_sweep, tail};
use starlink_divide_repro::orbit;
use starlink_divide_repro::simnet;

#[test]
fn figure2_grid_is_complete_and_monotone() {
    let s = coverage_sweep::sweep(model());
    assert_eq!(s.beamspreads.len(), 15);
    assert_eq!(s.oversubs.len(), 30);
    for row in &s.fraction {
        assert_eq!(row.len(), 30);
        for &f in row {
            assert!((0.0..=1.0).contains(&f));
        }
        for w in row.windows(2) {
            assert!(w[1] >= w[0], "not monotone in oversubscription");
        }
    }
}

#[test]
fn figure2_matches_paper_annotations() {
    let s = coverage_sweep::sweep(model());
    // Fig 2 colorbar extremes: ~0.36 at (b=14, ρ=5); near-1 at the
    // FCC line (ρ=20) for beamspread 1.
    let bl = s.at(14, 5).unwrap();
    assert!((bl - 0.36).abs() < 0.05, "bottom-left {bl}");
    let fcc = s.at(1, 20).unwrap();
    assert!(fcc > 0.98, "(1,20) {fcc}");
}

#[test]
fn figure3_curves_hit_table2_and_step_down() {
    let m = model();
    let curves = tail::figure3(m, 50_000);
    assert_eq!(curves.len(), 6);
    for c in &curves {
        assert!(
            c.points.len() >= 2,
            "b={} has {} points",
            c.beamspread,
            c.points.len()
        );
        for w in c.points.windows(2) {
            assert!(w[0].constellation >= w[1].constellation);
            assert!(w[0].unserved <= w[1].unserved);
        }
    }
    // The 20:1 curves start at the Table 2 capped values (±1%).
    let expect = [
        (1u32, 80_567u64),
        (2, 41_261),
        (5, 16_750),
        (10, 8_417),
        (15, 5_621),
    ];
    for (c, &(b, n)) in curves.iter().zip(&expect) {
        assert_eq!(c.beamspread, b);
        let rel = (c.points[0].constellation as f64 - n as f64).abs() / n as f64;
        assert!(rel < 0.01, "b={b}: {} vs {n}", c.points[0].constellation);
    }
}

#[test]
fn figure3_first_step_spans_hundreds_to_a_thousand_satellites() {
    // F3's quantitative claim across beamspreads.
    let m = model();
    let step = |b: u32| {
        let c = tail::tail_curve(
            m,
            Oversubscription::FCC_CAP,
            Beamspread::new(b).unwrap(),
            u64::MAX,
        );
        c.points[0].constellation - c.points[1].constellation
    };
    assert!((800..2_500).contains(&step(1)), "b=1 step {}", step(1));
    assert!((150..500).contains(&step(5)), "b=5 step {}", step(5));
    assert!((40..200).contains(&step(15)), "b=15 step {}", step(15));
}

#[test]
fn figure4_cdfs_are_consistent_across_plans() {
    let results = afford::figure4(model());
    assert_eq!(results.len(), 4);
    // Cheaper plans dominate: at every income the share priced out is
    // no larger.
    for w in results.windows(2) {
        assert!(w[0].plan.monthly_usd <= w[1].plan.monthly_usd);
        assert!(w[0].unaffordable_locations <= w[1].unaffordable_locations);
    }
    // The Lifeline arithmetic: the subsidized threshold is $66,450.
    let lifeline = &results[2];
    assert!((lifeline.plan.min_affordable_income_usd() - 66_450.0).abs() < 1e-6);
}

#[test]
fn affordability_totals_match_the_dataset() {
    let m = model();
    for r in afford::figure4(m) {
        assert_eq!(r.total_locations, m.dataset.total_locations);
        assert!(r.unaffordable_locations <= r.total_locations);
        assert_eq!(r.cdf.last().unwrap().1, r.total_locations);
    }
}

#[test]
fn qoe_simulation_validates_f1_service_quality_claim() {
    let reports = simnet::busy_hour_experiment(0.5, &[20.0, 35.0], 11);
    let at20 = &reports[0];
    let at35 = &reports[1];
    // At the FCC benchmark most flows run at full speed; at the peak
    // cell's 35:1 ratio a large share do not.
    assert!(at20.full_speed_fraction > 0.8, "20:1 {:?}", at20);
    assert!(at35.full_speed_fraction < 0.7, "35:1 {:?}", at35);
    assert!(at35.median_mbps < at20.median_mbps);
}

#[test]
fn orbit_density_model_agrees_with_propagation() {
    // The constellation sizing rests on d(φ); validate it against the
    // actual Walker shell used for sizing, at the binding latitudes.
    let shell = orbit::WalkerShell::new(550.0, 53.0, 24, 16, 5);
    for lat in [36.43, 37.0] {
        let analytic = orbit::density_factor(lat, 53.0).unwrap();
        let empirical = orbit::density::empirical_density_factor(&shell, lat, 1.5, 199);
        let rel = (empirical - analytic).abs() / analytic;
        assert!(rel < 0.05, "lat {lat}: {empirical} vs {analytic}");
    }
}

#[test]
fn current_constellation_covers_the_peak_cell_location() {
    // "Anyone, anywhere": the ~8,000-satellite constellation always has
    // satellites above the peak-demand cell.
    let shells = orbit::WalkerShell::starlink_current_2025();
    let peak = model().dataset.peak_cell().center;
    let stats = orbit::coverage::coverage(
        &shells,
        &[peak],
        &orbit::coverage::CoverageConfig::default(),
    );
    assert!(stats[0].min_in_view >= 1);
    assert_eq!(stats[0].availability, 1.0);
}

#[test]
fn reports_render_every_artifact_without_panicking() {
    // Smoke-test the full reporting path the CLI uses.
    use starlink_divide_repro::report::{Heatmap, LineChart, Series};
    let m = model();
    let s = coverage_sweep::sweep(m);
    let h = Heatmap {
        title: "t".into(),
        x_label: "x".into(),
        y_label: "y".into(),
        xs: s.oversubs.clone(),
        ys: s.beamspreads.clone(),
        values: s.fraction.clone(),
    };
    assert!(h.render(700.0, 400.0).contains("</svg>"));
    let mut chart = LineChart::new("fig3", "unserved", "sats");
    for c in tail::figure3(m, 30_000) {
        chart.push(Series::steps(
            format!("b={}", c.beamspread),
            c.points
                .iter()
                .map(|p| (p.unserved as f64, p.constellation as f64))
                .collect(),
        ));
    }
    assert!(chart.render(700.0, 400.0).contains("</svg>"));
}

#[test]
fn lifeline_subsidy_value_is_applied_exactly() {
    let with = IspPlan::starlink_with_lifeline();
    let without = IspPlan::starlink_residential();
    assert!(
        (without.monthly_usd
            - with.monthly_usd
            - starlink_divide_repro::demand::LIFELINE_SUBSIDY_USD)
            .abs()
            < 1e-9
    );
}
