//! End-to-end reproduction checks: the paper's findings F1–F4 and
//! Table 2, asserted across the full crate stack (synthetic dataset →
//! hex grid → capacity model → orbital density → findings).

mod common;

use common::model;
use starlink_divide_repro::capacity::beamspread::Beamspread;
use starlink_divide_repro::capacity::DeploymentPolicy;
use starlink_divide_repro::model::{demand_stats, findings, sizing};

#[test]
fn figure1_statistics_match_calibration_targets() {
    let s = demand_stats::demand_stats(model());
    assert_eq!(s.max, 5998, "peak cell");
    // p90/p99 at test scale carry the same quantile curve, but with
    // only ~400 demand cells the nearest-rank quantiles quantize
    // coarsely (paper scale lands at 553/1461 vs the published
    // 552/1437 — see EXPERIMENTS.md).
    // (At ~400 cells the top percentile IS the anchor set, so p99
    // reaches the anchors; the paper-scale quantile checks live in
    // leo-demand's calibration tests.)
    assert!((400..=800).contains(&s.p90), "p90 {}", s.p90);
    assert!(s.p90 <= s.p99 && s.p99 <= s.max);
    assert!(s.us_cells > 25_000, "US cells {}", s.us_cells);
}

#[test]
fn finding1_spectrum_limits() {
    let f = findings::finding1(model());
    // The paper: 5998-location peak cell ⇒ 599.8 Gbps ⇒ ~35:1; five
    // cells (22,428 locations) above the 20:1 capacity; 5,103 shed.
    assert_eq!(f.peak_locations, 5998);
    assert!((f.peak_oversub - 34.62).abs() < 0.1);
    assert_eq!(f.over_cap_cells, 5);
    assert_eq!(f.over_cap_locations, 22_428);
    assert_eq!(f.unserved_at_cap, 5_103);
}

#[test]
fn table2_reproduces_paper_within_one_percent() {
    let rows = sizing::table2(model());
    let paper = [
        (1u32, 79_287u64, 80_567u64),
        (2, 40_611, 41_261),
        (5, 16_486, 16_750),
        (10, 8_284, 8_417),
        (15, 5_532, 5_621),
    ];
    for (row, &(b, full, capped)) in rows.iter().zip(&paper) {
        assert_eq!(row.beamspread, b);
        let rf = (row.full_service as f64 - full as f64).abs() / full as f64;
        let rc = (row.capped as f64 - capped as f64).abs() / capped as f64;
        assert!(rf < 0.01, "b={b} full {} vs paper {full}", row.full_service);
        assert!(rc < 0.01, "b={b} capped {} vs paper {capped}", row.capped);
    }
}

#[test]
fn finding2_constellation_scale() {
    let f = findings::finding2(model());
    assert!(f.required_b2_capped > 40_000);
    assert!(f.additional_needed > 32_000);
}

#[test]
fn finding3_diminishing_returns() {
    let f = findings::finding3(model());
    // "a couple hundred … additional satellites" at beamspread 5.
    assert!((100..2_000).contains(&f.marginal_satellites), "{f:?}");
    assert!(f.tail_locations >= 3_000);
}

#[test]
fn finding4_affordability() {
    let f = findings::finding4(model());
    let frac = f.unaffordable_residential as f64 / f.total_locations as f64;
    assert!((frac - 0.745).abs() < 0.05, "unaffordable fraction {frac}");
    assert!(f.unaffordable_with_lifeline < f.unaffordable_residential);
    assert!(f.cable_affordable_fraction > 0.999);
}

#[test]
fn full_service_vs_capped_ordering_holds_at_every_beamspread() {
    // The paper's Table 2: the capped scenario consistently needs ~1.6%
    // more satellites (its binding cell sits at a sparser latitude).
    let m = model();
    for b in 1..=15u32 {
        let spread = Beamspread::new(b).unwrap();
        let full = sizing::constellation_size(m, DeploymentPolicy::full_service(), spread);
        let capped = sizing::constellation_size(m, DeploymentPolicy::fcc_capped(), spread);
        assert!(capped > full, "b={b}: {capped} !> {full}");
        let ratio = capped as f64 / full as f64;
        assert!((1.005..1.03).contains(&ratio), "b={b} ratio {ratio}");
    }
}

#[test]
fn headline_narrative_the_title_claim() {
    // "Anyone, anywhere": the current ~8,000 satellites cover any single
    // location (density at CONUS latitudes is ample). "Not everyone,
    // everywhere": serving all demand within the FCC benchmark needs
    // >5x the current constellation at beamspread 2.
    let m = model();
    let needed = sizing::constellation_size(
        m,
        DeploymentPolicy::fcc_capped(),
        Beamspread::new(2).unwrap(),
    );
    assert!(needed as f64 / starlink_divide_repro::model::CURRENT_CONSTELLATION_SIZE as f64 > 5.0);
}
