//! Cross-crate pipeline consistency: the synthetic dataset, the hex
//! grid, the geography, and the capacity model must agree with each
//! other, not just individually pass their unit tests.

mod common;

use common::model;
use starlink_divide_repro::demand::geography;
use starlink_divide_repro::geomath::great_circle_distance_km;
use starlink_divide_repro::hexgrid::{STARLINK_CELL_AREA_KM2, STARLINK_RESOLUTION};

#[test]
fn every_demand_cell_center_is_inside_conus() {
    let m = model();
    let poly = geography::conus_polygon();
    for c in &m.dataset.cells {
        assert!(
            poly.contains(&c.center),
            "cell {} center {} outside CONUS",
            c.cell,
            c.center
        );
    }
}

#[test]
fn us_cell_count_matches_conus_area() {
    let m = model();
    let poly = geography::conus_polygon();
    let expect = poly.area_km2() / STARLINK_CELL_AREA_KM2;
    let got = m.dataset.us_cell_count as f64;
    let rel = (got - expect).abs() / expect;
    assert!(rel < 0.02, "{got} cells vs area-implied {expect:.0}");
}

#[test]
fn scattered_locations_rebin_exactly() {
    // The location scatter and the hex binning are inverse operations:
    // re-binning every point reproduces the per-cell counts exactly.
    let m = model();
    let locations = m.dataset.scatter_locations(2024);
    let mut counts = std::collections::HashMap::new();
    for loc in &locations {
        let cell = m.dataset.grid.cell_for(&loc.position, STARLINK_RESOLUTION);
        *counts.entry(cell).or_insert(0u64) += 1;
    }
    assert_eq!(counts.len(), m.dataset.cells.len());
    for c in &m.dataset.cells {
        assert_eq!(counts.get(&c.cell), Some(&c.locations), "cell {}", c.cell);
    }
}

#[test]
fn county_assignment_is_nearest_seat() {
    let m = model();
    for c in m.dataset.cells.iter().step_by(37) {
        let assigned = &m.dataset.counties[c.county as usize];
        let d_assigned = great_circle_distance_km(&c.center, &assigned.seat);
        // No other county seat may be closer.
        for county in &m.dataset.counties {
            let d = great_circle_distance_km(&c.center, &county.seat);
            assert!(
                d >= d_assigned - 1e-9,
                "cell {} assigned county {} ({d_assigned:.1} km) but county {} is at {d:.1} km",
                c.cell,
                assigned.id,
                county.id
            );
        }
    }
}

#[test]
fn county_location_totals_are_consistent() {
    let m = model();
    let total: u64 = m.dataset.counties.iter().map(|c| c.locations).sum();
    assert_eq!(total, m.dataset.total_locations);
    let per_cell: u64 = m.dataset.cells.iter().map(|c| c.locations).sum();
    assert_eq!(per_cell, m.dataset.total_locations);
}

#[test]
fn multi_beam_cells_respect_latitude_bands() {
    // The calibration routes multi-beam-class cells to mid latitudes
    // (DESIGN.md §4); the sizing model's correctness depends on it.
    let m = model();
    for c in &m.dataset.cells {
        if c.locations >= 1733 {
            assert!(
                c.center.lat_deg() >= 35.4,
                "3-beam-class cell at {}",
                c.center
            );
        } else if c.locations >= 867 {
            assert!(
                c.center.lat_deg() >= 33.6,
                "2-beam-class cell at {}",
                c.center
            );
        }
    }
}

#[test]
fn anchor_cells_are_present_and_unique() {
    let m = model();
    let mut over_cap: Vec<u64> = m
        .dataset
        .cells
        .iter()
        .map(|c| c.locations)
        .filter(|&l| l > 3465)
        .collect();
    over_cap.sort_unstable();
    assert_eq!(over_cap, vec![3825, 3950, 4205, 4450, 5998]);
}

#[test]
fn incomes_are_positive_and_bounded() {
    let m = model();
    for county in &m.dataset.counties {
        assert!(
            (20_000.0..200_000.0).contains(&county.median_income_usd),
            "county {} income {}",
            county.id,
            county.median_income_usd
        );
    }
}

#[test]
fn grid_cells_have_uniform_area() {
    // The equal-area construction: boundary polygons of far-apart cells
    // enclose the same area.
    let m = model();
    let ids = [
        m.dataset.cells.first().unwrap().cell,
        m.dataset.cells[m.dataset.cells.len() / 2].cell,
        m.dataset.cells.last().unwrap().cell,
    ];
    for id in ids {
        let boundary = m.dataset.grid.cell_boundary(id);
        let poly = starlink_divide_repro::geomath::GeoPolygon::new(boundary.to_vec()).unwrap();
        let rel = (poly.area_km2() - STARLINK_CELL_AREA_KM2).abs() / STARLINK_CELL_AREA_KM2;
        assert!(
            rel < 5e-3,
            "cell {id}: area {} (rel {rel})",
            poly.area_km2()
        );
    }
}
