//! The timeline recorder's disabled-path contract (DESIGN.md §10):
//! with no `--trace` the recorder allocates no lanes and records no
//! events, and `DIVIDE_OBS=off` wins even when tracing was requested —
//! at every thread count. One sequential test, because the recorder is
//! process-global state.

use starlink_divide_repro::demand::dataset::{BroadbandDataset, SynthConfig};
use starlink_divide_repro::model::{coverage_sweep, PaperModel};
use starlink_divide_repro::parallel::with_threads;
use starlink_divide_repro::{obs, trace};

/// Dataset generation plus the fig-2 sweep — the two heaviest span- and
/// fanout-instrumented paths in the pipeline.
fn run_pipeline(threads: usize) {
    with_threads(threads, || {
        let model = PaperModel::new(BroadbandDataset::generate(&SynthConfig::small()));
        let _ = coverage_sweep::sweep(&model);
    });
}

#[test]
fn recorder_stays_empty_unless_both_obs_and_trace_are_on() {
    // No --trace: spans and fanouts run, the recorder stays untouched.
    trace::set_enabled(false);
    trace::reset();
    obs::set_enabled(true);
    run_pipeline(1);
    run_pipeline(4);
    assert_eq!(trace::lane_count(), 0, "no lanes without --trace");
    assert_eq!(trace::event_count(), 0, "no events without --trace");

    // Tracing requested but observability off: the kill switch wins.
    obs::set_enabled(false);
    trace::set_enabled(true);
    run_pipeline(1);
    run_pipeline(4);
    assert!(!trace::enabled(), "DIVIDE_OBS=off must win over --trace");
    assert_eq!(trace::lane_count(), 0, "no lanes under DIVIDE_OBS=off");
    assert_eq!(trace::event_count(), 0, "no events under DIVIDE_OBS=off");

    // Both on: the same pipeline now fills the timeline.
    obs::set_enabled(true);
    run_pipeline(4);
    assert!(trace::event_count() > 0, "events recorded when enabled");
    assert!(trace::lane_count() >= 1, "at least the main lane exists");

    trace::set_enabled(false);
    trace::reset();
}
