//! Offline stand-in for the `criterion` crate.
//!
//! The `leo-bench` targets double as regression gates (they assert
//! pinned statistics), so they must build and run without crates.io
//! access. This shim implements the subset those benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! mean-of-N timing loop instead of criterion's statistical machinery.
//! Timings printed here are indicative; EXPERIMENTS.md's wall-clock
//! tables are measured with `/usr/bin/time` over the `divide` CLI.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group sharing a sample-size configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: sample_size as u64,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.total.as_secs_f64() / b.iters as f64;
        println!(
            "bench {id:<48} {:>12.3} ms/iter ({} iters)",
            per_iter * 1e3,
            b.iters
        );
    } else {
        println!("bench {id:<48} (no timing loop)");
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// untimed warm-up call).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/identity", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("grouped", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }
}
