//! Offline stand-in for the `crossbeam` crate.
//!
//! `leo-parallel` only needs crossbeam's scoped-thread API, which since
//! Rust 1.63 is expressible on `std::thread::scope`. This shim keeps
//! crossbeam's call shape — `crossbeam::scope(|s| { s.spawn(|_| ...) })`
//! returning `thread::Result` — so the worker-pool code reads like the
//! real dependency and can swap back to it when builds regain network
//! access.

#![forbid(unsafe_code)]

pub use thread::scope;

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned threads may borrow from the environment
    /// (`'env`) and are joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure
        /// receives the scope again so it could spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all threads it spawns are joined before
    /// returning. Returns `Err` with the panic payload if `f` itself
    /// or any spawned thread panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let r = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
