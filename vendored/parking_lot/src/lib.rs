//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's ergonomics — lock
//! methods return guards directly, no `Result`/poisoning — implemented
//! over `std::sync`. A poisoned std lock (a panic while held) is
//! recovered by taking the inner guard, which matches parking_lot's
//! behavior of simply not having poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn locks_recover_from_poisoning() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let m = Mutex::new(1u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison");
        }));
        assert_eq!(*m.lock(), 1, "lock usable after a panic while held");
    }
}
