//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { body }`),
//! * range strategies over floats and integers, tuple strategies,
//!   [`Strategy::prop_map`], [`collection::vec`],
//!   [`collection::hash_set`], and [`string::string_regex`] for simple
//!   `[class]{lo,hi}` patterns,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persistence: each
//! test runs `PROPTEST_CASES` (default 64) deterministic cases whose
//! inputs are a pure function of the test name and case index, so a
//! failure always reproduces under `cargo test <name>`. Regression
//! seeds checked in under `*.proptest-regressions` are replayed by
//! dedicated plain tests instead (see `tests/determinism.rs`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type.
///
/// The associated `Value` mirrors real proptest, so helper functions
/// declared as `-> impl Strategy<Value = T>` compile unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl SampleableRange for f64 {}
impl SampleableRange for i8 {}
impl SampleableRange for i16 {}
impl SampleableRange for i32 {}
impl SampleableRange for i64 {}
impl SampleableRange for u8 {}
impl SampleableRange for u16 {}
impl SampleableRange for u32 {}
impl SampleableRange for u64 {}
impl SampleableRange for usize {}
impl SampleableRange for isize {}

/// Marker for primitive types whose ranges act as strategies.
pub trait SampleableRange {}

impl<T> Strategy for Range<T>
where
    T: SampleableRange + Copy,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleableRange + Copy,
    RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A bare string literal is a regex strategy, as in real proptest.
/// The pattern is parsed on each generation; an unsupported pattern
/// panics, surfacing as a test failure at the use site.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("{}", e.0))
            .generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// A collection size: a fixed length or a half-open/inclusive
    /// range, mirroring real proptest's `Into<SizeRange>` arguments.
    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<i32> for SizeRange {
        fn from(n: i32) -> Self {
            usize::try_from(n).expect("negative collection size").into()
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from
    /// `size`; duplicates are retried a bounded number of times, so the
    /// result can fall below the target for very narrow element
    /// domains (none of this workspace's tests get near that regime).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// String strategies (`proptest::string`).
pub mod string {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Error from an unsupported or malformed pattern.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// Strategy for strings matching `[class]{lo,hi}` — the only
    /// regex shape this workspace uses. The class supports literal
    /// characters, `a-z` ranges, and `\n`/`\t`/`\\` escapes.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let inner = pattern
            .strip_prefix('[')
            .ok_or_else(|| unsupported(pattern))?;
        let (class, rest) = inner.split_once(']').ok_or_else(|| unsupported(pattern))?;
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| unsupported(pattern))?;
        let (lo, hi) = counts.split_once(',').ok_or_else(|| unsupported(pattern))?;
        let lo: usize = lo.trim().parse().map_err(|_| unsupported(pattern))?;
        let hi: usize = hi.trim().parse().map_err(|_| unsupported(pattern))?;

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let c = match c {
                '\\' => match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(e) => e,
                    None => return Err(unsupported(pattern)),
                },
                c => c,
            };
            if chars.peek() == Some(&'-') {
                // Possible range `c-d`; a trailing '-' is a literal.
                let mut ahead = chars.clone();
                ahead.next();
                if let Some(&end) = ahead.peek() {
                    chars.next();
                    chars.next();
                    for v in (c as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            alphabet.push(ch);
                        }
                    }
                    continue;
                }
            }
            alphabet.push(c);
        }
        if alphabet.is_empty() || lo > hi {
            return Err(unsupported(pattern));
        }
        Ok(RegexStrategy { alphabet, lo, hi })
    }

    fn unsupported(pattern: &str) -> Error {
        Error(format!(
            "unsupported pattern for vendored proptest: {pattern:?}"
        ))
    }

    /// See [`string_regex`].
    pub struct RegexStrategy {
        alphabet: Vec<char>,
        lo: usize,
        hi: usize,
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let n = rng.gen_range(self.lo..=self.hi);
            (0..n)
                .map(|_| self.alphabet[rng.gen_range(0..self.alphabet.len())])
                .collect()
        }
    }
}

/// Deterministic per-case generator: a pure function of the test name
/// and the case index, so any failure reproduces exactly.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Defines property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` running [`case_count`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {$(
        #[test]
        fn $name() {
            for case in 0..$crate::case_count() {
                let rng = &mut $crate::case_rng(stringify!($name), case);
                $(
                    #[allow(unused_mut)]
                    let $pat = $crate::Strategy::generate(&($strat), rng);
                )+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The glob import every property-test file uses.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let mut a = super::case_rng("t", 3);
        let mut b = super::case_rng("t", 3);
        assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn string_regex_generates_within_class_and_length() {
        let s = super::string::string_regex("[ -~\n\"]{0,24}").expect("valid");
        let mut rng = super::case_rng("string", 0);
        for _ in 0..200 {
            let v = super::Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 24);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_args(x in 0.0..1.0f64, n in 1u32..10, mut v in crate::collection::vec(0u64..5, 0..4)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            v.push(0);
            prop_assert!(v.len() <= 4);
        }

        #[test]
        fn macro_supports_prop_map(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19);
        }
    }
}
