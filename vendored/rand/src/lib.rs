//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over float
//! and integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream rand's ChaCha12-based `StdRng`, but
//! every consumer in this workspace seeds explicitly and pins derived
//! statistics rather than raw draws, so only determinism and
//! statistical quality matter, not stream compatibility. Determinism
//! contract: the same seed always produces the same sequence, on every
//! platform, forever (EXPERIMENTS.md's measured values depend on it).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, matching
    /// upstream rand's contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<G: RngCore> Rng for G {}

/// A range that knows how to draw one uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws a single sample.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
fn unit_f64<G: RngCore>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on the excluded endpoint;
        // fold it back to keep the half-open contract.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, tiny, passes BigCrush, and
    /// — unlike upstream's `StdRng` — guaranteed never to change
    /// streams across versions, since it lives in this repository.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for any seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "streams should not track each other");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&v));
            let w = rng.gen_range(-0.15..=0.15f64);
            assert!((-0.15..=0.15).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn unit_samples_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
